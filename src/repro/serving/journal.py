"""Append-only, crash-safe on-disk prediction journal.

Every prediction the serving stack answers vanishes at response time
unless something writes it down — and without that record there is no way
to tell whether an alias flip regressed accuracy, whether fold agreement
is drifting, or what traffic to replay against a candidate model.  The
journal is that record:

* :class:`JournalWriter` — the recording half.  ``record(entry)`` is
  called on the predict hot path
  (:meth:`~repro.serving.service.ServingFrontend.predict_many`), so it
  does almost nothing: append the entry to a bounded in-memory queue and
  return.  A background thread drains the queue, serialises entries
  (including :class:`~repro.graphs.graph.ProgramGraph` → wire dict, the
  expensive part) and appends them to JSONL segment files.  A full queue
  **drops and counts** instead of blocking — observability must never be
  able to take serving down.
* **Segments** — records land in ``segment-<n>.jsonl`` files of at most
  ``segment_records`` records each.  Every segment starts with a
  checksummed JSON header line identifying the file and schema; a writer
  always opens a *fresh* segment (never appends to an old file), so the
  only line a crash can tear is the final line of the newest segment.
* :class:`JournalReader` — the query half.  Iterates records across
  segments in order, tolerating a torn **final** line per segment (the
  crash signature) while treating interior garbage or a bad header as
  real corruption (:class:`JournalError`).  On top of iteration it offers
  the filter / group / percentile queries the ``repro-journal`` CLI and
  the A/B replay surface are built on.

The journal is the recorded-traffic substrate for
:mod:`repro.serving.replay` (offline A/B) and
:mod:`repro.serving.drift` (windowed shift alerts), and the future input
for calibrating batching knobs from real measurements.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..concurrency import TrackedCondition, TrackedLock, declare_blocking
from ..graphs.graph import ProgramGraph
from .serialization import program_graph_to_dict

#: bump when the record layout changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1

#: marker naming the file format in every segment header.
JOURNAL_MAGIC = "repro-prediction-journal"

#: records per segment file before rotating to a fresh one.
DEFAULT_SEGMENT_RECORDS = 10_000

#: bounded hot-path queue; a full queue drops (and counts) new records.
DEFAULT_QUEUE_CAPACITY = 65_536

#: per-model in-memory tail kept for the live drift endpoint.
DEFAULT_RECENT_WINDOW = 512

_SEGMENT_RE = re.compile(r"^segment-(\d{6})\.jsonl$")


class JournalError(RuntimeError):
    """The journal directory holds something that is not a valid journal
    (bad header, unsupported schema, interior corruption)."""


def _header_checksum(header: Dict[str, object]) -> str:
    """Checksum over the header fields (sans the checksum itself)."""
    body = {key: value for key, value in header.items() if key != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def segment_header(index: int) -> Dict[str, object]:
    """The checksummed first line of segment ``index``."""
    header: Dict[str, object] = {
        "journal": JOURNAL_MAGIC,
        "schema": JOURNAL_SCHEMA_VERSION,
        "segment": int(index),
        "created_unix": time.time(),
    }
    header["checksum"] = _header_checksum(header)
    return header


def validate_header(header: object, path: str) -> None:
    if not isinstance(header, dict) or header.get("journal") != JOURNAL_MAGIC:
        raise JournalError(f"{path}: not a prediction-journal segment")
    schema = header.get("schema")
    if schema != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"{path}: unsupported journal schema {schema!r} "
            f"(this build reads schema {JOURNAL_SCHEMA_VERSION})"
        )
    if header.get("checksum") != _header_checksum(header):
        raise JournalError(f"{path}: segment header checksum mismatch")


class JournalWriter:
    """Asynchronous, crash-safe recorder of served predictions.

    ``record(entry)`` is wait-free for the caller (one lock, one deque
    append); serialisation and disk I/O happen on the writer thread.  The
    ``graph`` field of an entry may be a raw :class:`ProgramGraph` — it is
    wire-encoded off the hot path (or dropped when ``record_graphs`` is
    off, which keeps segments small at the cost of replayability).
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        record_graphs: bool = True,
        recent_window: int = DEFAULT_RECENT_WINDOW,
    ):
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if recent_window < 1:
            raise ValueError("recent_window must be >= 1")
        # fspath, not str(): a non-path object (the bug class that once
        # created a repr-named directory at the repo root) must raise a
        # TypeError here, not become a directory name.
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.segment_records = int(segment_records)
        self.queue_capacity = int(queue_capacity)
        self.record_graphs = bool(record_graphs)
        self._recent_window = int(recent_window)
        self._lock = TrackedLock("journal.queue")
        self._wakeup = TrackedCondition(self._lock, name="journal.wakeup")
        self._drained = TrackedCondition(self._lock, name="journal.drained")
        self._queue: Deque[Dict[str, object]] = deque()
        self._recent: Dict[str, Deque[Dict[str, object]]] = {}
        self._dropped = 0
        self._written = 0
        self._segments_opened = 0
        self._closed = False
        self._draining = False
        # Fresh segments only: never append to a file a previous process
        # wrote, so the sole possible torn line is the final line of the
        # newest segment of the most recent writer.
        self._next_segment = self._first_free_segment_index()
        self._segment_file = None
        self._segment_count = 0
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-journal-writer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- recording
    def record(self, entry: Dict[str, object]) -> bool:
        """Enqueue one prediction record; ``False`` = dropped (full/closed).

        The entry is journalled as given, plus serialisation of a raw
        ``graph``; the in-memory per-model tail for the live drift
        endpoint is updated here too (a deque append, still O(1)).
        """
        with self._lock:
            if self._closed:
                return False
            if len(self._queue) >= self.queue_capacity:
                self._dropped += 1
                return False
            self._queue.append(entry)
            model = entry.get("model")
            if isinstance(model, str):
                window = self._recent.get(model)
                if window is None:
                    window = self._recent[model] = deque(maxlen=self._recent_window)
                window.append(entry)
            self._wakeup.notify()
        return True

    def recent(self, model: str) -> List[Dict[str, object]]:
        """In-memory tail of records for ``model`` (oldest first) — the
        live input of ``GET /v1/models/<name>/drift``."""
        with self._lock:
            window = self._recent.get(model)
            return list(window) if window is not None else []

    # ------------------------------------------------------------- lifecycle
    def flush(self, timeout_s: float = 10.0) -> bool:
        """Block until every queued record is on disk (or timeout)."""
        deadline = time.monotonic() + timeout_s
        with self._lock:
            while self._queue or self._draining:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._drained.wait(remaining)
        return True

    def close(self, timeout_s: float = 10.0) -> None:
        """Flush, stop the writer thread and close the open segment."""
        self.flush(timeout_s)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify()
        self._thread.join(timeout=timeout_s)
        if self._segment_file is not None:
            self._segment_file.flush()
            self._segment_file.close()
            self._segment_file = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- export
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "directory": self.directory,
                "written": self._written,
                "dropped": self._dropped,
                "queued": len(self._queue),
                "segments_opened": self._segments_opened,
            }

    # ------------------------------------------------------------ internals
    def _first_free_segment_index(self) -> int:
        taken = [
            int(match.group(1))
            for name in os.listdir(self.directory)
            if (match := _SEGMENT_RE.match(name))
        ]
        return max(taken) + 1 if taken else 0

    def _drain_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if not self._queue and self._closed:
                    return
                batch = list(self._queue)
                self._queue.clear()
                self._draining = True
            try:
                with declare_blocking("journal segment write"):
                    for entry in batch:
                        self._append(self._serialise(entry))
                    if self._segment_file is not None:
                        self._segment_file.flush()
            finally:
                with self._lock:
                    self._draining = False
                    self._written += len(batch)
                    self._drained.notify_all()

    def _serialise(self, entry: Dict[str, object]) -> str:
        record = dict(entry)
        graph = record.get("graph")
        if isinstance(graph, ProgramGraph):
            record["graph"] = (
                program_graph_to_dict(graph) if self.record_graphs else None
            )
        elif not self.record_graphs:
            record["graph"] = None
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    def _append(self, line: str) -> None:
        if self._segment_file is None or self._segment_count >= self.segment_records:
            self._rotate()
        self._segment_file.write(line + "\n")
        self._segment_count += 1

    def _rotate(self) -> None:
        if self._segment_file is not None:
            self._segment_file.flush()
            self._segment_file.close()
        index = self._next_segment
        self._next_segment += 1
        path = os.path.join(self.directory, f"segment-{index:06d}.jsonl")
        self._segment_file = open(path, "w", encoding="utf-8")
        header = segment_header(index)
        self._segment_file.write(
            json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._segment_file.flush()
        self._segment_count = 0
        with self._lock:
            self._segments_opened += 1


class JournalReader:
    """Query surface over a journal directory.

    Reading is crash-tolerant by the same rule the writer guarantees: the
    only line a crash can tear is the *final* line of a segment, so an
    undecodable final line is recovered around (and reported via
    :attr:`torn_tails`), while an undecodable interior line — something a
    clean writer can never produce — raises :class:`JournalError`.
    """

    def __init__(self, directory: str):
        if not os.path.isdir(directory):
            raise JournalError(f"{directory}: not a journal directory")
        self.directory = directory
        #: segment paths whose final line was torn by a crash (filled as
        #: segments are read).
        self.torn_tails: List[str] = []

    # -------------------------------------------------------------- reading
    def segments(self) -> List[str]:
        """Segment paths in deterministic read order.

        A journal directory is either flat (one writer — segments sit
        directly inside it) or one level of per-writer subdirectories (the
        replica pool: each worker journals into its own ``replica-NN/``,
        so two processes never share a segment file).  Both layouts — and
        their mix — read transparently: direct segments first, then each
        subdirectory's segments, subdirectories in sorted order.
        """
        direct: List[str] = []
        subdirs: List[str] = []
        for name in sorted(os.listdir(self.directory)):
            path = os.path.join(self.directory, name)
            if _SEGMENT_RE.match(name):
                direct.append(path)
            elif os.path.isdir(path):
                nested = sorted(
                    entry
                    for entry in os.listdir(path)
                    if _SEGMENT_RE.match(entry)
                )
                if nested:
                    subdirs.extend(os.path.join(path, entry) for entry in nested)
        return direct + subdirs

    def __iter__(self) -> Iterator[Dict[str, object]]:
        for path in self.segments():
            yield from self._read_segment(path)

    def _read_segment(self, path: str) -> Iterator[Dict[str, object]]:
        with open(path, "r", encoding="utf-8", newline="") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()  # complete trailing newline, not a torn line
        if not lines:
            raise JournalError(f"{path}: empty segment (missing header)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            if len(lines) == 1:
                # A crash while writing the very first line of a fresh
                # segment: nothing was ever recorded in it.
                if path not in self.torn_tails:
                    self.torn_tails.append(path)
                return
            raise JournalError(f"{path}: undecodable segment header") from None
        validate_header(header, path)
        last = len(lines) - 1
        for number, line in enumerate(lines[1:], start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == last:
                    # The crash signature: a torn final append.  Everything
                    # before it is intact — recover it, report the tear.
                    if path not in self.torn_tails:
                        self.torn_tails.append(path)
                    return
                raise JournalError(
                    f"{path}:{number + 1}: corrupt interior record"
                ) from None
            if not isinstance(record, dict):
                raise JournalError(
                    f"{path}:{number + 1}: record is not a JSON object"
                )
            yield record

    # -------------------------------------------------------------- queries
    def records(
        self,
        model: Optional[str] = None,
        label: Optional[int] = None,
        cache_hit: Optional[bool] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """Filtered records, oldest first."""
        matches: List[Dict[str, object]] = []
        for record in self:
            if model is not None and record.get("model") != model:
                continue
            if label is not None and record.get("label") != label:
                continue
            if cache_hit is not None and bool(record.get("cache_hit")) != cache_hit:
                continue
            timestamp = record.get("ts")
            if since is not None and (timestamp is None or timestamp < since):
                continue
            if until is not None and (timestamp is None or timestamp > until):
                continue
            matches.append(record)
        if limit is not None:
            matches = matches[-limit:]
        return matches

    def tail(self, count: int, model: Optional[str] = None) -> List[Dict[str, object]]:
        return self.records(model=model, limit=count)

    def group_by(
        self, field: str, model: Optional[str] = None
    ) -> Dict[object, int]:
        """Record counts per value of ``field`` (e.g. ``label``, ``model``)."""
        counts: Dict[object, int] = {}
        for record in self.records(model=model):
            key = record.get(field)
            if isinstance(key, (dict, list)):
                key = json.dumps(key, sort_keys=True)
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items(), key=lambda item: str(item[0])))

    def label_distribution(self, model: Optional[str] = None) -> Dict[int, float]:
        """Share of served requests per predicted label."""
        counts = self.group_by("label", model=model)
        total = sum(counts.values())
        return {
            int(label): count / total
            for label, count in counts.items()
            if label is not None
        }

    def stats(self, model: Optional[str] = None) -> Dict[str, object]:
        """Aggregate view of the recorded traffic (the ``repro-journal
        stats`` output): counts, cache behaviour, latency and per-stage
        percentiles, label distribution, fold agreement."""
        records = self.records(model=model)
        latencies: List[float] = []
        stage_samples: Dict[str, List[float]] = {}
        agreements: List[float] = []
        cache_hits = 0
        models: Dict[str, int] = {}
        for record in records:
            latency = record.get("latency_s")
            if isinstance(latency, (int, float)):
                latencies.append(float(latency))
            if record.get("cache_hit"):
                cache_hits += 1
            agreement = record.get("agreement")
            if isinstance(agreement, (int, float)):
                agreements.append(float(agreement))
            stages = record.get("stages")
            if isinstance(stages, dict):
                for stage, value in stages.items():
                    if isinstance(value, (int, float)):
                        stage_samples.setdefault(stage, []).append(float(value))
            name = record.get("model")
            if isinstance(name, str):
                models[name] = models.get(name, 0) + 1

        def percentiles(values: Sequence[float]) -> Dict[str, Optional[float]]:
            if not values:
                return {"p50_s": None, "p95_s": None}
            array = np.asarray(values, dtype=np.float64)
            return {
                "p50_s": float(np.percentile(array, 50.0)),
                "p95_s": float(np.percentile(array, 95.0)),
            }

        label_counts = {
            label: count
            for label, count in self.group_by("label", model=model).items()
            if label is not None
        }
        total_labels = sum(label_counts.values())
        return {
            "records": len(records),
            "models": dict(sorted(models.items())),
            "cache_hits": cache_hits,
            "cache_hit_rate": cache_hits / len(records) if records else 0.0,
            "label_distribution": {
                int(label): count / total_labels
                for label, count in label_counts.items()
            },
            "latency": {"samples": len(latencies), **percentiles(latencies)},
            "stages": {
                stage: {"samples": len(values), **percentiles(values)}
                for stage, values in sorted(stage_samples.items())
            },
            "mean_agreement": (
                float(np.mean(agreements)) if agreements else None
            ),
            "torn_tails": list(self.torn_tails),
        }

    def calibration_rows(
        self, model: Optional[str] = None
    ) -> List[Dict[str, float]]:
        """One row per journalled *batch*, ready for cost-model fitting.

        See the module-level :func:`calibration_rows` for the extraction
        contract; this simply feeds it the reader's records.
        """
        return calibration_rows(self.records(model=model))


def calibration_rows(
    records: Iterable[Dict[str, object]], model: Optional[str] = None
) -> List[Dict[str, float]]:
    """Deduplicate per-request journal records into per-batch feature rows.

    The frontends journal one record per *request*; every member of a
    micro-batch shares its batch's ``stages`` spans and a ``batch`` block
    carrying the collated shape plus a process-wide sequence number.  The
    cost-model calibrator needs one observation per batch, so rows are
    keyed on ``(model, artifact, batch.seq)`` and cache hits (which never
    ran a batch) are skipped.  Each row carries the shape features
    (``graphs``/``nodes``/``edges``/``relations``/``folds``) and the
    measured targets (``plan_build_s``/``infer_s``/``batch_latency_s``).
    """
    rows: Dict[object, Dict[str, float]] = {}
    for record in records:
        if not isinstance(record, dict):
            continue
        if model is not None and record.get("model") != model:
            continue
        if record.get("cache_hit"):
            continue
        batch = record.get("batch")
        stages = record.get("stages")
        latency = record.get("latency_s")
        if not isinstance(batch, dict) or not isinstance(stages, dict):
            continue
        sequence = batch.get("seq")
        plan_build = stages.get("plan_build_s")
        infer = stages.get("infer_s")
        numeric = (
            batch.get("graphs"),
            batch.get("nodes"),
            batch.get("edges"),
            batch.get("relations"),
            plan_build,
            infer,
            latency,
        )
        if sequence is None or any(
            not isinstance(value, (int, float)) or isinstance(value, bool)
            for value in numeric
        ):
            continue
        key = (record.get("model"), record.get("artifact"), sequence)
        if key in rows:
            continue
        rows[key] = {
            "graphs": float(batch["graphs"]),
            "nodes": float(batch["nodes"]),
            "edges": float(batch["edges"]),
            "relations": float(batch["relations"]),
            "folds": float(batch.get("folds", 1) or 1),
            "plan_build_s": float(plan_build),
            "infer_s": float(infer),
            "batch_latency_s": float(latency),
        }
    return list(rows.values())
