"""``repro-journal``: query a prediction journal from the command line.

Three subcommands over one ``--dir`` (a directory the serving hub wrote
with ``--journal-dir``):

* ``tail`` — the newest N records, one JSON object per line (the raw
  record shape, so the output pipes straight into ``jq``)::

      repro-journal tail --dir /var/tmp/journal -n 20 --model prod

* ``stats`` — aggregate view of the recorded traffic: counts per model,
  label distribution, cache hit rate, latency and per-stage percentiles,
  mean fold agreement, and any torn segment tails::

      repro-journal stats --dir /var/tmp/journal [--model prod]

* ``query`` — filtered records (model / label / cache-hit / time range),
  again as JSON lines; ``--count`` prints just the match count::

      repro-journal query --dir /var/tmp/journal --label 3 --cache-hit

All three read with :class:`~repro.serving.journal.JournalReader`, so a
journal torn by a crashed server is recovered (complete records kept,
torn tail reported on stderr) rather than refused.

Failures are structured, never tracebacks: stderr carries one JSON line
``{"error": {"code": ..., "message": ...}}`` and the exit code tells
scripts *which* failure occurred — ``2`` the directory does not exist
(``no-journal``), ``3`` a segment is corrupt beyond the crash-recovery
rule (``corrupt-journal``), ``4`` the directory holds no segments yet
(``empty-journal``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .journal import JournalError, JournalReader

#: exit codes: scripts branch on *which* way the journal was unreadable.
EXIT_OK = 0
EXIT_NO_JOURNAL = 2
EXIT_CORRUPT_JOURNAL = 3
EXIT_EMPTY_JOURNAL = 4


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-journal",
        description="Query the prediction journal a serving hub recorded.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dir", required=True, help="journal directory (segment-*.jsonl files)"
        )
        sub.add_argument("--model", help="restrict to one deployment name")

    tail = subparsers.add_parser("tail", help="print the newest records")
    common(tail)
    tail.add_argument("-n", "--count", type=int, default=10, help="records to print")
    tail.add_argument(
        "--no-graphs",
        action="store_true",
        help="strip the (bulky) recorded graphs from the output",
    )

    stats = subparsers.add_parser("stats", help="aggregate recorded traffic")
    common(stats)

    query = subparsers.add_parser("query", help="print filtered records")
    common(query)
    query.add_argument("--label", type=int, help="only this predicted label")
    hit = query.add_mutually_exclusive_group()
    hit.add_argument(
        "--cache-hit", action="store_true", dest="cache_hit", default=None,
        help="only cache hits",
    )
    hit.add_argument(
        "--cache-miss", action="store_false", dest="cache_hit",
        help="only cache misses",
    )
    query.add_argument("--since", type=float, help="unix timestamp lower bound")
    query.add_argument("--until", type=float, help="unix timestamp upper bound")
    query.add_argument("--limit", type=int, help="print at most the newest N matches")
    query.add_argument(
        "--count", action="store_true", help="print only the match count"
    )
    query.add_argument(
        "--no-graphs",
        action="store_true",
        help="strip the (bulky) recorded graphs from the output",
    )
    return parser


def _print_records(records, strip_graphs: bool) -> None:
    for record in records:
        if strip_graphs and "graph" in record:
            record = {key: value for key, value in record.items() if key != "graph"}
        print(json.dumps(record, sort_keys=True))


def _report_torn(reader: JournalReader) -> None:
    for path in reader.torn_tails:
        print(f"note: recovered around a torn final line in {path}", file=sys.stderr)


def _fail(code: str, message: str, exit_code: int) -> int:
    print(
        json.dumps({"error": {"code": code, "message": message}}, sort_keys=True),
        file=sys.stderr,
    )
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        reader = JournalReader(args.dir)
    except JournalError as exc:
        # The directory is absent (or not a directory): nothing was ever
        # recorded here — distinct from a journal that exists but is bad.
        return _fail("no-journal", str(exc), EXIT_NO_JOURNAL)
    if not reader.segments():
        return _fail(
            "empty-journal",
            f"{args.dir}: journal directory contains no segments",
            EXIT_EMPTY_JOURNAL,
        )
    try:
        if args.command == "tail":
            _print_records(reader.tail(args.count, model=args.model), args.no_graphs)
        elif args.command == "stats":
            print(json.dumps(reader.stats(model=args.model), indent=2, sort_keys=True))
        else:  # query
            records = reader.records(
                model=args.model,
                label=args.label,
                cache_hit=args.cache_hit,
                since=args.since,
                until=args.until,
                limit=args.limit,
            )
            if args.count:
                print(len(records))
            else:
                _print_records(records, args.no_graphs)
    except JournalError as exc:
        # Corruption the crash-recovery rule cannot explain (interior
        # damage, bad header, checksum mismatch): the data needs a human.
        return _fail("corrupt-journal", str(exc), EXIT_CORRUPT_JOURNAL)
    _report_torn(reader)
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
