"""Versioned on-disk registry for trained predictors.

Layout (one directory per model name, one sub-directory per version)::

    <root>/
        <name>/
            v0001/
                manifest.json     name, version, configs, checksums
                weights.npz       RGCN weights + ModelConfig (save_npz format)
                vocabulary.json   node-token vocabulary of the encoder
                label_space.json  machine + reduced configuration set (optional)
                hybrid.json       fitted hybrid classifier (optional)
            v0002/
                ...

Versions are immutable once written: ``save`` stages the artefact in a
temporary directory and atomically renames it into place, and every file's
SHA-256 is recorded in the manifest so ``load``/``verify`` detect torn or
tampered artefacts before any weight is deserialised.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import re
import shutil
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.hybrid_model import HybridStaticDynamicClassifier
from ..core.labeling import LabelSpace
from ..core.static_model import StaticConfigurationPredictor, StaticModelConfig
from ..gnn.model import StaticRGCNModel
from ..graphs.features import GraphEncoder
from .serialization import (
    hybrid_from_dict,
    hybrid_to_dict,
    label_space_from_dict,
    label_space_to_dict,
    static_config_from_dict,
    static_config_to_dict,
    vocabulary_from_dict,
    vocabulary_to_dict,
)

MANIFEST_FILE = "manifest.json"
WEIGHTS_FILE = "weights.npz"
VOCABULARY_FILE = "vocabulary.json"
LABEL_SPACE_FILE = "label_space.json"
HYBRID_FILE = "hybrid.json"
#: marker file excluding a version from garbage collection (not part of the
#: checksummed payload — pinning does not invalidate an artefact).
PIN_FILE = "PINNED"

#: bump when the on-disk layout changes incompatibly.
REGISTRY_FORMAT_VERSION = 1

#: how many times ``save`` re-allocates a version after losing the rename
#: race to a concurrent writer before giving up.
SAVE_ALLOCATION_RETRIES = 64

_VERSION_PATTERN = re.compile(r"v\d{4,}")
_FOLD_NAME_PATTERN = re.compile(r"(?P<base>.+)-fold(?P<fold>\d+)")


class ArtifactError(RuntimeError):
    """Base class for registry failures."""


class ArtifactNotFoundError(ArtifactError):
    """The requested model name/version does not exist."""


class ArtifactIntegrityError(ArtifactError):
    """A stored file is missing or does not match its recorded checksum."""


@dataclass(frozen=True)
class ArtifactRef:
    """Address of one stored artefact version."""

    name: str
    version: str
    path: str

    def __str__(self) -> str:
        return f"{self.name}@{self.version}"


@dataclass
class LoadedArtifact:
    """A fully deserialised artefact, ready to serve."""

    ref: ArtifactRef
    manifest: Dict[str, object]
    model: StaticRGCNModel
    encoder: GraphEncoder
    static_config: StaticModelConfig
    num_labels: int
    label_space: Optional[LabelSpace] = None
    hybrid: Optional[HybridStaticDynamicClassifier] = None

    def build_predictor(self) -> StaticConfigurationPredictor:
        """Reconstruct a :class:`StaticConfigurationPredictor` around the
        stored weights (identical predictions to the exported instance)."""
        predictor = StaticConfigurationPredictor(
            num_labels=self.num_labels, encoder=self.encoder, config=self.static_config
        )
        predictor.model.load_state_dict(self.model.state_dict())
        predictor.model.eval()
        return predictor


def _sha256(path: str) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _write_json(path: str, payload: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _read_json(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class ArtifactRegistry:
    """Stores and retrieves versioned predictor artefacts under ``root``."""

    def __init__(self, root: str):
        # fspath, not str(): str() happily coerces *any* object, which once
        # turned a miswired registry argument into a repr-named directory
        # at the caller's cwd.  Non-path objects must raise here instead.
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------ discovery
    def names(self) -> List[str]:
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, entry))
        )

    def versions(self, name: str) -> List[str]:
        model_dir = os.path.join(self.root, name)
        if not os.path.isdir(model_dir):
            return []
        # Only complete versions count: a well-formed "vNNNN" name (torn
        # "*.staging" directories are invisible) with a manifest inside.
        # Sorted numerically so v10000 orders after v9999.
        found = [
            entry
            for entry in os.listdir(model_dir)
            if _VERSION_PATTERN.fullmatch(entry)
            and os.path.isfile(os.path.join(model_dir, entry, MANIFEST_FILE))
        ]
        return sorted(found, key=lambda version: int(version[1:]))

    def latest_version(self, name: str) -> Optional[str]:
        versions = self.versions(name)
        return versions[-1] if versions else None

    def exists(self, name: str, version: Optional[str] = None) -> bool:
        if version is None:
            return bool(self.versions(name))
        return version in self.versions(name)

    def fold_groups(self) -> Dict[str, Dict[int, str]]:
        """Group ``<base>-fold<k>`` model names by base name.

        ``ReproPipeline.export_artifacts`` writes one model name per
        cross-validation fold; this maps each ensemble base name to
        ``{fold_index: model_name}`` so a deployment can discover every
        member of an exported ensemble without knowing the fold count.
        Names without a ``-fold<k>`` suffix are not ensemble members and do
        not appear.
        """
        groups: Dict[str, Dict[int, str]] = {}
        for name in self.names():
            match = _FOLD_NAME_PATTERN.fullmatch(name)
            if match is None or not self.versions(name):
                continue
            groups.setdefault(match.group("base"), {})[int(match.group("fold"))] = name
        return {base: dict(sorted(folds.items())) for base, folds in sorted(groups.items())}

    def fold_members(self, base: str) -> Dict[int, str]:
        """``{fold_index: model_name}`` for one ensemble base name."""
        return self.fold_groups().get(base, {})

    # ----------------------------------------------------------------- save
    def save(
        self,
        name: str,
        predictor: StaticConfigurationPredictor,
        label_space: Optional[LabelSpace] = None,
        hybrid: Optional[HybridStaticDynamicClassifier] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> ArtifactRef:
        """Persist one predictor as the next version of ``name``.

        Safe under concurrent writers: the artefact is staged in a unique
        temporary directory, and if another writer claims the computed
        version first (the atomic rename fails because the target exists),
        the version is re-allocated and the rename retried — the loser gets
        the next free number instead of crashing with ``ENOTEMPTY``.
        """
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise ValueError(f"invalid artifact name {name!r}")
        model_dir = os.path.join(self.root, name)
        # Unique staging suffix so two writers never stage in the same
        # directory.
        staging_dir = os.path.join(
            model_dir, f"vstaging-{os.getpid()}-{uuid.uuid4().hex[:8]}.staging"
        )
        os.makedirs(staging_dir)
        try:
            predictor.model.save_npz(os.path.join(staging_dir, WEIGHTS_FILE))
            _write_json(
                os.path.join(staging_dir, VOCABULARY_FILE),
                vocabulary_to_dict(predictor.encoder.vocabulary),
            )
            if label_space is not None:
                _write_json(
                    os.path.join(staging_dir, LABEL_SPACE_FILE),
                    label_space_to_dict(label_space),
                )
            if hybrid is not None:
                _write_json(
                    os.path.join(staging_dir, HYBRID_FILE), hybrid_to_dict(hybrid)
                )
            # Payload checksums are version-independent; only the manifest is
            # rewritten when a rename collision forces a new version number.
            checksums = {
                entry: _sha256(os.path.join(staging_dir, entry))
                for entry in sorted(os.listdir(staging_dir))
            }
            for _ in range(SAVE_ALLOCATION_RETRIES):
                version = self._next_version(name)
                final_dir = os.path.join(model_dir, version)
                manifest = {
                    "format_version": REGISTRY_FORMAT_VERSION,
                    "name": name,
                    "version": version,
                    "created_unix": time.time(),
                    "num_labels": predictor.num_labels,
                    "static_config": static_config_to_dict(predictor.config),
                    "metadata": dict(metadata or {}),
                    "files": checksums,
                }
                _write_json(os.path.join(staging_dir, MANIFEST_FILE), manifest)
                try:
                    os.replace(staging_dir, final_dir)
                except OSError as exc:
                    # A concurrent writer won the race to this version: the
                    # rename target exists and is a non-empty directory.
                    # (Anything else — e.g. ENOTDIR from a stray *file*
                    # squatting on the version path — is not a race and
                    # would fail identically on every retry, so it
                    # propagates.)
                    if exc.errno in (errno.ENOTEMPTY, errno.EEXIST):
                        continue
                    raise
                return ArtifactRef(name=name, version=version, path=final_dir)
            raise ArtifactError(
                f"could not allocate a version for {name!r} after "
                f"{SAVE_ALLOCATION_RETRIES} attempts (registry under heavy "
                f"concurrent writes?)"
            )
        except Exception:
            shutil.rmtree(staging_dir, ignore_errors=True)
            raise

    def _next_version(self, name: str) -> str:
        versions = self.versions(name)
        if not versions:
            return "v0001"
        highest = int(versions[-1][1:])
        return f"v{highest + 1:04d}"

    # ------------------------------------------------------------- retention
    def pin(self, name: str, version: str) -> None:
        """Exclude one version from :meth:`gc` (e.g. a rollback target)."""
        ref = self.resolve(name, version)
        with open(os.path.join(ref.path, PIN_FILE), "w", encoding="utf-8") as handle:
            handle.write(f"pinned at {time.time()}\n")

    def unpin(self, name: str, version: str) -> None:
        """Make a pinned version eligible for :meth:`gc` again."""
        ref = self.resolve(name, version)
        pin_path = os.path.join(ref.path, PIN_FILE)
        if os.path.isfile(pin_path):
            os.remove(pin_path)

    def is_pinned(self, name: str, version: str) -> bool:
        ref = self.resolve(name, version)
        return os.path.isfile(os.path.join(ref.path, PIN_FILE))

    def pinned_versions(self, name: str) -> List[str]:
        return [
            version
            for version in self.versions(name)
            if os.path.isfile(os.path.join(self.root, name, version, PIN_FILE))
        ]

    def gc(self, name: str, keep_last: int = 1, dry_run: bool = False) -> List[str]:
        """Delete old versions of ``name``, keeping the newest ``keep_last``.

        Never deletes the latest version (``keep_last`` must be >= 1) or any
        pinned version.  With ``dry_run=True`` nothing is removed; the
        return value lists the versions that were (or would be) deleted,
        oldest first.  Deletion drops the manifest first, so a crash
        mid-removal leaves an invisible torn directory rather than a
        loadable half-artefact.
        """
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1 (the latest version is never deleted)")
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise ValueError(f"invalid artifact name {name!r}")
        versions = self.versions(name)
        doomed = [
            version
            for version in versions[: max(0, len(versions) - keep_last)]
            if not os.path.isfile(os.path.join(self.root, name, version, PIN_FILE))
        ]
        if dry_run:
            return doomed
        for version in doomed:
            path = os.path.join(self.root, name, version)
            manifest_path = os.path.join(path, MANIFEST_FILE)
            if os.path.isfile(manifest_path):
                os.remove(manifest_path)
            shutil.rmtree(path, ignore_errors=True)
        return doomed

    # ----------------------------------------------------------------- load
    def resolve(self, name: str, version: Optional[str] = None) -> ArtifactRef:
        """Checked ``(name, version, path)`` address of one stored version.

        ``version=None`` resolves to the latest version, so callers that
        need "the current version of <name>" get one canonical, validated
        answer instead of re-implementing the lookup (the serving layer,
        the hub and the CLI all route through here).  Raises
        :class:`ArtifactNotFoundError` for unknown names, malformed or
        missing versions.
        """
        # Same validation as save(): registry names/versions are path
        # components, so reject separators and dot-prefixes (traversal), and
        # only well-formed "vNNNN" versions — never a torn staging directory.
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise ArtifactNotFoundError(f"invalid artifact name {name!r}")
        if version is not None and not _VERSION_PATTERN.fullmatch(version):
            raise ArtifactNotFoundError(f"invalid version {version!r} for {name!r}")
        resolved = version or self.latest_version(name)
        if resolved is None:
            raise ArtifactNotFoundError(f"no versions of {name!r} in {self.root}")
        path = os.path.join(self.root, name, resolved)
        if not os.path.isfile(os.path.join(path, MANIFEST_FILE)):
            raise ArtifactNotFoundError(f"artifact {name}@{resolved} not found")
        return ArtifactRef(name=name, version=resolved, path=path)

    def _verify_manifest(self, ref: ArtifactRef) -> Dict[str, object]:
        """Check every stored file against its checksum; return the manifest."""
        manifest = _read_json(os.path.join(ref.path, MANIFEST_FILE))
        for entry, expected in manifest.get("files", {}).items():
            path = os.path.join(ref.path, entry)
            if not os.path.isfile(path):
                raise ArtifactIntegrityError(f"{ref}: missing file {entry!r}")
            actual = _sha256(path)
            if actual != expected:
                raise ArtifactIntegrityError(
                    f"{ref}: checksum mismatch for {entry!r} "
                    f"(expected {expected[:12]}…, got {actual[:12]}…)"
                )
        return manifest

    def verify(self, name: str, version: Optional[str] = None) -> ArtifactRef:
        """Check every stored file against its manifest checksum."""
        ref = self.resolve(name, version)
        self._verify_manifest(ref)
        return ref

    def load(
        self, name: str, version: Optional[str] = None, verify: bool = True
    ) -> LoadedArtifact:
        """Deserialise one artefact version (the latest by default)."""
        ref = self.resolve(name, version)
        if verify:
            manifest = self._verify_manifest(ref)
        else:
            manifest = _read_json(os.path.join(ref.path, MANIFEST_FILE))
        model = StaticRGCNModel.load_npz(os.path.join(ref.path, WEIGHTS_FILE))
        encoder = GraphEncoder(
            vocabulary_from_dict(_read_json(os.path.join(ref.path, VOCABULARY_FILE)))
        )
        label_space = None
        label_space_path = os.path.join(ref.path, LABEL_SPACE_FILE)
        if os.path.isfile(label_space_path):
            label_space = label_space_from_dict(_read_json(label_space_path))
        hybrid = None
        hybrid_path = os.path.join(ref.path, HYBRID_FILE)
        if os.path.isfile(hybrid_path):
            hybrid = hybrid_from_dict(_read_json(hybrid_path))
        return LoadedArtifact(
            ref=ref,
            manifest=manifest,
            model=model,
            encoder=encoder,
            static_config=static_config_from_dict(dict(manifest["static_config"])),
            num_labels=int(manifest["num_labels"]),
            label_space=label_space,
            hybrid=hybrid,
        )
