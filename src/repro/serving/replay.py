"""Offline A/B replay of journalled traffic.

The prediction journal records the actual graphs a hub served (wire-form,
under each record's ``graph`` key), which makes recorded production
traffic a free evaluation set: re-run it through two deployments — two
model versions, or the same ensemble under two combination strategies —
and diff what they answer.  That turns the risky question "is v2 safe to
flip the alias to?" into a deterministic offline report instead of a
live experiment.

Replay is exact, not statistical: both candidates see the identical
request sequence (decoded from the journal), inference is deterministic,
and the report lists every fingerprint the two sides disagreed on, next
to per-side label distributions and latency percentiles.  Records
journalled without a replayable graph (pre-encoded submissions, or a
writer configured with ``record_graphs=False``) are skipped and counted
— a replay that silently covered half the traffic would be worse than
none.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from .drift import label_distribution
from .serialization import SerializationError, program_graph_from_dict


def replayable_graphs(records: Sequence[Mapping[str, object]]):
    """Decode the replayable requests of a record sequence.

    Returns ``(graphs, replayed_records, skipped)`` where ``skipped``
    counts records without a decodable graph.
    """
    graphs = []
    replayed = []
    skipped = 0
    for record in records:
        data = record.get("graph")
        if not isinstance(data, dict):
            skipped += 1
            continue
        try:
            graphs.append(program_graph_from_dict(data))
        except SerializationError:
            skipped += 1
            continue
        replayed.append(record)
    return graphs, replayed, skipped


def _side_report(results) -> Dict[str, object]:
    labels = [int(result.label) for result in results]
    latencies = np.asarray(
        [float(result.latency_s) for result in results], dtype=np.float64
    )
    return {
        "labels": labels,
        "label_distribution": label_distribution([{"label": label} for label in labels]),
        "latency": {
            "p50_s": float(np.percentile(latencies, 50.0)) if len(latencies) else None,
            "p95_s": float(np.percentile(latencies, 95.0)) if len(latencies) else None,
            "mean_s": float(latencies.mean()) if len(latencies) else None,
        },
        "cache_hits": sum(1 for result in results if result.cache_hit),
    }


def replay_ab(
    records: Sequence[Mapping[str, object]],
    predictor_a,
    predictor_b,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Re-run journalled traffic through two predictors and diff them.

    ``predictor_a`` / ``predictor_b`` are anything with ``predict_many``
    (a :class:`~repro.serving.service.PredictionService`, an ensemble, or
    a hub deployment's predictor).  Returns a JSON-friendly report:
    per-side label distributions and latency percentiles, the agreement
    rate, and one entry per disagreement (fingerprint + both labels), in
    request order — two runs over the same journal produce the identical
    report.
    """
    name_a, name_b = tuple(names) if names is not None else ("a", "b")
    graphs, replayed, skipped = replayable_graphs(records)
    if not graphs:
        return {
            "requests": 0,
            "skipped_no_graph": skipped,
            "agreement_rate": None,
            "disagreements": [],
            name_a: None,
            name_b: None,
        }
    results_a = predictor_a.predict_many(graphs)
    results_b = predictor_b.predict_many(graphs)
    disagreements: List[Dict[str, object]] = []
    for record, result_a, result_b in zip(replayed, results_a, results_b):
        if int(result_a.label) != int(result_b.label):
            disagreements.append(
                {
                    "fingerprint": result_a.fingerprint,
                    "name": result_a.name,
                    name_a: int(result_a.label),
                    name_b: int(result_b.label),
                    "journalled_label": record.get("label"),
                }
            )
    return {
        "requests": len(graphs),
        "skipped_no_graph": skipped,
        "agreement_rate": 1.0 - len(disagreements) / len(graphs),
        "disagreements": disagreements,
        name_a: _side_report(results_a),
        name_b: _side_report(results_b),
    }
