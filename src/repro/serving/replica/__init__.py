"""Cross-replica scale-out: a multiprocess pool of ModelHub workers.

The package splits the subsystem along the process boundary:

* :mod:`.config` — the picklable :class:`ReplicaConfig` that crosses it,
  plus the replica-layer error types;
* :mod:`.transport` — the pipe protocol (ops, statuses, the typed
  exception codec);
* :mod:`.worker` — the child-process side: one full hub per process;
* :mod:`.supervisor` — the parent side: spawning, affinity routing,
  heartbeats, failover, recycling, drain.
"""

from .config import (
    DrainingError,
    ReplicaConfig,
    ReplicaError,
    ReplicaUnavailableError,
    default_start_method,
)
from .supervisor import ReplicaSupervisor, request_affinity_key

__all__ = [
    "DrainingError",
    "ReplicaConfig",
    "ReplicaError",
    "ReplicaSupervisor",
    "ReplicaUnavailableError",
    "default_start_method",
    "request_affinity_key",
]
