"""Replica-pool configuration and the replica-layer error types.

One :class:`ReplicaConfig` describes everything a worker process needs to
build its own :class:`~repro.serving.hub.ModelHub` — registry root,
wire-encoded deployment specs, aliases, default routing, cache and
journal knobs — plus the supervisor-side lifecycle knobs (heartbeat
cadence, recycle threshold, retry budget).  The record is a plain
picklable dataclass because it crosses the process boundary verbatim:
the supervisor snapshots its *current* desired state into one of these
for every spawn, so a replica respawned hours after boot still builds
the model set the operators have mutated the pool into, not the one the
CLI started with.

Per-slot derivations (:meth:`ReplicaConfig.slot_journal_dir`,
:meth:`ReplicaConfig.slot_checkpoint_path`) keep the on-disk layout in
one place: each slot journals into its own subdirectory (two writers
never share a segment) and checkpoints into its own dump file (the next
incarnation of the slot warm-starts from it before entering rotation).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..hub import HubError

#: journal/checkpoint names are derived from the slot index with this
#: prefix, so a directory of per-replica journals is self-describing.
REPLICA_DIR_PREFIX = "replica-"


class ReplicaError(HubError):
    """Base class for replica-pool failures."""


class ReplicaUnavailableError(ReplicaError):
    """No ready replica could answer (pool exhausted or still spawning)."""


class DrainingError(ReplicaError):
    """The pool is shutting down; new requests are refused."""


def default_start_method() -> str:
    """``forkserver`` where available (fast respawns once the server has
    preloaded the serving stack), else ``spawn``.  Never ``fork``: the
    supervisor is multithreaded by construction (reader + monitor
    threads), and forking a multithreaded process is undefined enough to
    be banned here outright."""
    if "forkserver" in multiprocessing.get_all_start_methods():
        return "forkserver"
    return "spawn"


@dataclass
class ReplicaConfig:
    """Everything one worker needs, plus the supervisor lifecycle knobs."""

    registry_root: str
    #: wire-encoded deployment specs (``deployment_spec_to_dict``); each
    #: worker decodes and loads them into its private hub.
    specs: List[Dict[str, object]] = field(default_factory=list)
    aliases: List[Tuple[str, str]] = field(default_factory=list)
    default: Optional[str] = None
    #: ``(name, version)`` of a calibrated cost model to load per worker.
    cost_model: Optional[Tuple[str, Optional[str]]] = None

    # -- per-worker hub knobs -------------------------------------------
    cache_capacity: int = 4096
    enable_cache: bool = True
    pool_workers: int = 2
    journal_dir: Optional[str] = None
    journal_record_graphs: bool = True
    #: directory of per-slot cache dumps; a respawned slot warm-starts
    #: from its predecessor's last dump before entering rotation.
    checkpoint_dir: Optional[str] = None
    checkpoint_interval_s: float = 30.0
    #: threads draining prediction RPCs inside each worker (control
    #: messages are answered inline off the pipe reader).
    worker_threads: int = 4

    # -- supervisor lifecycle knobs -------------------------------------
    replicas: int = 2
    start_method: Optional[str] = None
    spawn_timeout_s: float = 120.0
    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 15.0
    #: retire a replica after it has answered this many requests
    #: (``None`` = never); the replacement is spawned and made ready
    #: *before* the old worker drains, so traffic never pauses.
    recycle_after: Optional[int] = None
    #: how many times one request may fail over to another replica after
    #: a worker death before surfacing ``ReplicaUnavailableError``.
    max_retries: int = 2
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        self.registry_root = os.fspath(self.registry_root)
        if self.journal_dir is not None:
            self.journal_dir = os.fspath(self.journal_dir)
        if self.checkpoint_dir is not None:
            self.checkpoint_dir = os.fspath(self.checkpoint_dir)
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be >= 1")
        if self.spawn_timeout_s <= 0:
            raise ValueError("spawn_timeout_s must be > 0")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0")
        if self.recycle_after is not None and self.recycle_after < 1:
            raise ValueError("recycle_after must be >= 1 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.checkpoint_dir is not None and not self.enable_cache:
            raise ValueError("checkpoint_dir requires enable_cache")
        method = self.start_method or default_start_method()
        if method not in multiprocessing.get_all_start_methods() or method == "fork":
            raise ValueError(
                f"unsupported start_method {method!r} (the supervisor is "
                f"multithreaded; use 'forkserver' or 'spawn')"
            )
        self.start_method = method

    # ------------------------------------------------------- per-slot paths
    def slot_journal_dir(self, slot: int) -> Optional[str]:
        if self.journal_dir is None:
            return None
        return os.path.join(self.journal_dir, f"{REPLICA_DIR_PREFIX}{slot:02d}")

    def slot_checkpoint_path(self, slot: int) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return os.path.join(
            self.checkpoint_dir, f"{REPLICA_DIR_PREFIX}{slot:02d}.npz"
        )

    def snapshot_for_spawn(
        self,
        specs: List[Dict[str, object]],
        aliases: Dict[str, str],
        default: Optional[str],
    ) -> "ReplicaConfig":
        """A copy carrying the *current* desired model set — what a
        respawned worker must build, not the boot-time set."""
        return replace(
            self,
            specs=[dict(spec) for spec in specs],
            aliases=sorted(aliases.items()),
            default=default,
        )
