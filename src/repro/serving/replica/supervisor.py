"""The replica supervisor: N worker processes behind one hub-shaped API.

:class:`ReplicaSupervisor` duck-types the :class:`~repro.serving.hub.ModelHub`
surface the HTTP layer consumes — ``submit``/``predict_many``, the admin
mutations, ``snapshot``/``capacity_report``/``model_health`` — but fans the
work out across long-lived worker processes (one full hub each), which is
the only way past the GIL for this CPU-bound inference stack.

Routing, lifecycle and failure handling live here:

* **Affinity routing.**  Requests are placed by rendezvous (highest-
  random-weight) hashing of the graph's content fingerprint over the
  ready slots: the same graph always lands on the same replica while the
  pool membership is stable, so each worker's ``EmbeddingCache`` stays
  hot instead of every replica relearning every graph.  Affinity is keyed
  on the *slot index*, which survives respawns — and the respawned worker
  warm-starts from the slot's checkpoint dump, so the cache the routing
  kept hot is handed back to the replacement.
* **Lifecycle.**  Spawn → ready-handshake (with a fatal path, so a
  misconfigured worker fails the boot loudly instead of hanging it);
  heartbeat pings with a timeout-kill; automatic respawn of dead slots;
  recycle-after-N-requests with a spawn-replacement-first swap so
  recycling never pauses traffic; graceful drain on shutdown.
* **Failover.**  Every in-flight call is remembered until its reply
  arrives.  When a worker dies, its pending *idempotent* calls (pure
  inference and introspection) are transparently re-dispatched to another
  ready replica — a SIGKILLed worker fails zero requests — and only when
  the retry budget or the ready set is exhausted does the caller see a
  typed :class:`ReplicaUnavailableError` (HTTP 503 ``replica-unavailable``).

Lock order is ``routing → handle`` (never inverted): the routing lock
guards the slot table and the desired model state; each handle's mutex
guards that replica's pipe writes and pending-call map.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Set, Tuple

from ...concurrency import TrackedLock, TrackedRLock
from ..costmodel import DEFAULT_COST_MODEL_NAME
from ..deployment import DeploymentSpec, deployment_spec_to_dict
from ..hub import DeploymentNotFoundError, DeploymentQuarantinedError
from ..stats import aggregate_snapshots
from .config import (
    DrainingError,
    ReplicaConfig,
    ReplicaError,
    ReplicaUnavailableError,
)
from .transport import (
    OP_ADMIN,
    OP_INTROSPECT,
    OP_PING,
    OP_PREDICT_MANY,
    OP_SHUTDOWN,
    OP_SUBMIT,
    READY_ID,
    RETRYABLE_OPS,
    STATUS_OK,
    STATUS_READY,
    decode_exception,
)
from .worker import worker_main

#: ceiling on one control-plane round trip (admin / introspection).
_RPC_TIMEOUT_S = 60.0


def request_affinity_key(request) -> Optional[str]:
    """Content hash of a program graph, for rendezvous routing.

    This is deliberately *not* the model-layer
    :func:`~repro.graphs.fingerprint.graph_fingerprint` (which needs the
    encoder's vocabulary, living worker-side): affinity only needs
    "identical graphs hash identically", so a cheap digest over the node
    ``kind:text`` sequence and the edge list is enough — a collision
    merely co-locates two different graphs, which costs nothing.
    """
    nodes = getattr(request, "nodes", None)
    if nodes is None:
        return None
    hasher = hashlib.sha256()
    for node in nodes:
        hasher.update(str(getattr(node, "kind", "")).encode("utf-8", "replace"))
        hasher.update(b"\x1f")
        hasher.update(str(getattr(node, "text", "")).encode("utf-8", "replace"))
        hasher.update(b"\x1e")
    hasher.update(b"\x1d")
    for edge in getattr(request, "edges", None) or ():
        part = (
            f"{getattr(edge, 'source', '')}\x1f{getattr(edge, 'target', '')}"
            f"\x1f{getattr(edge, 'flow', '')}\x1e"
        )
        hasher.update(part.encode("utf-8", "replace"))
    return hasher.hexdigest()


class _PendingCall:
    """One in-flight RPC: the caller's future plus everything needed to
    transparently re-dispatch it if the replica holding it dies."""

    __slots__ = ("future", "op", "payload", "key", "attempts", "excluded", "retryable")

    def __init__(self, op: str, payload, key: Optional[str] = None):
        self.future: Future = Future()
        self.op = op
        self.payload = payload
        self.key = key
        self.attempts = 1
        self.excluded: Set[int] = set()
        self.retryable = op in RETRYABLE_OPS


class _ReplicaHandle:
    """Supervisor-side state of one worker process (one slot)."""

    __slots__ = (
        "slot",
        "generation",
        "process",
        "conn",
        "mutex",
        "pending",
        "state",
        "served",
        "pid",
        "last_pong",
        "ready",
        "fatal",
        "reader",
    )

    def __init__(self, slot: int, generation: int, process, conn):
        self.slot = slot
        self.generation = generation
        self.process = process
        self.conn = conn
        # Guards pipe writes + the pending map + the state field.  Pipe
        # sends can block on a full buffer, hence allow_blocking.
        self.mutex = TrackedLock(
            f"replica.handle.{slot}", allow_blocking=True
        )
        self.pending: Dict[int, _PendingCall] = {}
        self.state = "starting"  # starting | ready | draining | dead
        self.served = 0
        self.pid: Optional[int] = None
        self.last_pong = time.monotonic()
        self.ready = threading.Event()
        self.fatal: Optional[Exception] = None
        self.reader: Optional[threading.Thread] = None


class _RemoteModelProxy:
    """Predictor-shaped view of one model across the pool (describe and
    snapshot only — predictions go through the supervisor's dispatch)."""

    #: the HTTP layer probes these with getattr; a remote model has no
    #: in-process stats recorder or cache to offer.
    stats = None
    cache = None

    def __init__(self, supervisor: "ReplicaSupervisor", name: Optional[str]):
        self._supervisor = supervisor
        self._name = name

    def describe(self) -> Dict[str, object]:
        return self._supervisor._introspect_one(
            "model_describe", {"name": self._name}
        )

    def snapshot(self) -> Dict[str, object]:
        return self._supervisor._merged_model_snapshot(self._name)


class _RemoteDeployment:
    """Deployment-shaped handle the HTTP admin/metrics routes consume."""

    def __init__(
        self,
        name: str,
        supervisor: "ReplicaSupervisor",
        describe_payload: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self._supervisor = supervisor
        self._describe = describe_payload
        self.predictor = _RemoteModelProxy(supervisor, name)
        self.spec = None

    def describe(self) -> Dict[str, object]:
        if self._describe is not None:
            return self._describe
        return self._supervisor._introspect_one(
            "model_health", {"name": self.name}
        )["model"]


class ReplicaSupervisor:
    """Owns N replica processes; looks like a :class:`ModelHub` to callers."""

    #: the supervisor has no in-process shared infrastructure — each
    #: worker owns its own; the HTTP layer reads these attributes and
    #: treats None as "absent", exactly as for a cache-less hub.
    cache = None
    checkpoint = None
    journal = None

    #: hub methods deliberately NOT mirrored (the rpc-parity lint rule
    #: enforces the rest of the surface).  ``adopt`` takes a live
    #: predictor object, and the cost-model setters take a model instance
    #: — neither can cross a process boundary; replica deployments load
    #: from the registry and ship cost models by artifact version.
    MIRROR_EXEMPT = frozenset({"adopt", "set_cost_model", "cost_model"})
    #: supervisor-only surface with no hub counterpart.
    MIRROR_EXTRA = frozenset({"replica_status"})

    def __init__(self, config: ReplicaConfig):
        self._config = config
        self._routing = TrackedRLock("replica.routing")
        self._handles: List[Optional[_ReplicaHandle]] = [None] * config.replicas
        self._generations: Dict[int, int] = {}
        self._ids = itertools.count(1)
        # Desired model state, mirrored from the boot config and every
        # admin mutation since; respawned workers are built from (and
        # sync'd to) this, never the boot-time set.
        self._specs: Dict[str, Dict[str, object]] = {
            str(spec["name"]): dict(spec) for spec in config.specs
        }
        self._aliases: Dict[str, str] = dict(config.aliases)
        self._default: Optional[str] = config.default or (
            next(iter(self._specs)) if len(self._specs) == 1 else None
        )
        self._quarantined: Dict[str, str] = {}
        self._cost_model_ref = config.cost_model
        self._ctx = None
        self._started = False
        self._draining = False
        self._stopping = False
        self._wake = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._created_monotonic = time.monotonic()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ReplicaSupervisor":
        with self._routing:
            if self._started:
                return self
            replicas = self._config.replicas
        if self._config.journal_dir is not None:
            os.makedirs(self._config.journal_dir, exist_ok=True)
        if self._config.checkpoint_dir is not None:
            os.makedirs(self._config.checkpoint_dir, exist_ok=True)
        self._ctx = multiprocessing.get_context(self._config.start_method)
        if self._config.start_method == "forkserver":
            # Preload the worker module (hence the serving stack) into the
            # fork server once, so every spawn/respawn after the first is
            # a cheap fork of an already-imported interpreter.
            preload = getattr(self._ctx, "set_forkserver_preload", None)
            if preload is not None:
                preload(["repro.serving.replica.worker"])
        handles = []
        for slot in range(replicas):
            handle = self._spawn(slot)
            handles.append(handle)
            with self._routing:
                self._handles[slot] = handle
        deadline = time.monotonic() + self._config.spawn_timeout_s
        try:
            for handle in handles:
                self._await_ready(handle, deadline)
        except BaseException:
            self._terminate_all()
            raise
        with self._routing:
            self._started = True
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-replica-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self) -> None:
        with self._routing:
            if not self._started or self._stopping:
                already = self._stopping
            else:
                already = False
            self._draining = True
            self._stopping = True
            handles = [h for h in self._handles if h is not None]
        self._wake.set()
        monitor, self._monitor = self._monitor, None
        if monitor is not None:
            monitor.join(timeout=self._config.drain_timeout_s)
        if already:
            return
        shutdowns: List[Tuple[_ReplicaHandle, _PendingCall]] = []
        for handle in handles:
            with handle.mutex:
                if handle.state == "ready":
                    handle.state = "draining"
            call = _PendingCall(OP_SHUTDOWN, {})
            if self._send(handle, call):
                shutdowns.append((handle, call))
        for handle, call in shutdowns:
            try:
                call.future.result(timeout=self._config.drain_timeout_s)
            except Exception:
                pass  # a worker that won't drain gets killed below
        self._terminate_all()
        with self._routing:
            self._started = False

    def __enter__(self) -> "ReplicaSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _terminate_all(self) -> None:
        with self._routing:
            handles = [h for h in self._handles if h is not None]
        for handle in handles:
            process = handle.process
            process.join(timeout=self._config.drain_timeout_s)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        for handle in handles:
            reader = handle.reader
            if reader is not None and reader is not threading.current_thread():
                reader.join(timeout=5.0)

    # ------------------------------------------------------------- spawning
    def _spawn(self, slot: int) -> _ReplicaHandle:
        with self._routing:
            generation = self._generations.get(slot, 0) + 1
            self._generations[slot] = generation
            specs = [dict(spec) for spec in self._specs.values()]
            aliases = dict(self._aliases)
            default = self._default
            cost_model = self._cost_model_ref
        snapshot = self._config.snapshot_for_spawn(specs, aliases, default)
        snapshot.cost_model = cost_model
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, snapshot, slot, generation),
            name=f"repro-replica-{slot}-g{generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _ReplicaHandle(slot, generation, process, parent_conn)
        handle.reader = threading.Thread(
            target=self._reader,
            args=(handle,),
            name=f"repro-replica-reader-{slot}-g{generation}",
            daemon=True,
        )
        handle.reader.start()
        return handle

    def _await_ready(self, handle: _ReplicaHandle, deadline: float) -> None:
        remaining = deadline - time.monotonic()
        if not handle.ready.wait(max(remaining, 0.0)):
            handle.process.kill()
            raise ReplicaUnavailableError(
                f"replica {handle.slot} did not become ready within "
                f"{self._config.spawn_timeout_s}s"
            )
        if handle.fatal is not None:
            raise handle.fatal

    # ----------------------------------------------------------- pipe reader
    def _reader(self, handle: _ReplicaHandle) -> None:
        conn = handle.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            request_id, status, payload = message
            if request_id == READY_ID:
                if status == STATUS_READY:
                    handle.pid = payload.get("pid")
                    handle.last_pong = time.monotonic()
                    with handle.mutex:
                        if handle.state == "starting":
                            handle.state = "ready"
                else:  # STATUS_FATAL: the worker's hub could not be built
                    handle.fatal = decode_exception(payload)
                    with handle.mutex:
                        handle.state = "dead"
                handle.ready.set()
                continue
            with handle.mutex:
                call = handle.pending.pop(request_id, None)
            handle.last_pong = time.monotonic()
            if call is None:
                continue
            if status == STATUS_OK:
                call.future.set_result(payload)
            else:
                call.future.set_exception(decode_exception(payload))
        self._on_connection_lost(handle)

    def _on_connection_lost(self, handle: _ReplicaHandle) -> None:
        with handle.mutex:
            was_dead = handle.state == "dead" and not handle.pending
            handle.state = "dead"
            pending = list(handle.pending.values())
            handle.pending.clear()
        if was_dead:
            return
        handle.ready.set()
        for call in pending:
            self._retry_or_fail(call, handle.slot)
        self._wake.set()  # prompt respawn, don't wait out the heartbeat tick

    def _retry_or_fail(self, call: _PendingCall, dead_slot: int) -> None:
        call.excluded.add(dead_slot)
        with self._routing:
            draining = self._draining
        if (
            draining
            or not call.retryable
            or call.attempts > self._config.max_retries
        ):
            if not call.future.done():
                call.future.set_exception(
                    ReplicaUnavailableError(
                        f"replica worker died mid-request "
                        f"({call.op!r}, attempt {call.attempts})"
                    )
                )
            return
        call.attempts += 1
        self._dispatch_call(call)

    # ------------------------------------------------------------- dispatch
    def _pick(
        self, key: Optional[str], excluded: Set[int]
    ) -> Optional[_ReplicaHandle]:
        with self._routing:
            handles = [h for h in self._handles if h is not None]
        candidates: List[Tuple[_ReplicaHandle, int]] = []
        for handle in handles:
            if handle.slot in excluded:
                continue
            with handle.mutex:
                if handle.state != "ready":
                    continue
                load = len(handle.pending)
            candidates.append((handle, load))
        if not candidates:
            return None
        if key is None:
            # No affinity: least-loaded wins (slot index breaks ties).
            return min(candidates, key=lambda item: (item[1], item[0].slot))[0]
        best: Optional[_ReplicaHandle] = None
        best_weight = b""
        for handle, _ in candidates:
            weight = hashlib.sha256(f"{key}:{handle.slot}".encode()).digest()
            if best is None or weight > best_weight:
                best, best_weight = handle, weight
        return best

    def _send(self, handle: _ReplicaHandle, call: _PendingCall) -> bool:
        request_id = next(self._ids)
        with handle.mutex:
            if handle.state == "ready":
                pass
            elif handle.state == "draining" and call.op == OP_SHUTDOWN:
                pass
            else:
                return False
            handle.pending[request_id] = call
            try:
                handle.conn.send((request_id, call.op, call.payload))
            except (BrokenPipeError, OSError, ValueError):
                del handle.pending[request_id]
                handle.state = "dead"
                return False
        return True

    def _dispatch_call(self, call: _PendingCall) -> None:
        while True:
            handle = self._pick(call.key, call.excluded)
            if handle is None:
                if not call.future.done():
                    call.future.set_exception(
                        ReplicaUnavailableError(
                            "no ready replica available for "
                            f"{call.op!r} (pool of {self._config.replicas})"
                        )
                    )
                return
            if self._send(handle, call):
                return
            call.excluded.add(handle.slot)

    def _dispatch(self, op: str, payload, key: Optional[str]) -> _PendingCall:
        call = _PendingCall(op, payload, key=key)
        self._dispatch_call(call)
        return call

    # ----------------------------------------------------- name resolution
    def _resolve_name(
        self, name: Optional[str], for_predict: bool = False
    ) -> str:
        with self._routing:
            if for_predict and self._draining:
                raise DrainingError(
                    "the replica pool is draining; new requests are refused"
                )
            specs = self._specs
            if name is None:
                canonical = self._default
                if canonical is None:
                    raise DeploymentNotFoundError(
                        "this hub has no default deployment; address a model "
                        "by name (POST /v1/models/<name>/predict)"
                    )
            else:
                canonical = name if name in specs else self._aliases.get(name)
                if canonical is None or canonical not in specs:
                    raise DeploymentNotFoundError(
                        f"no deployment or alias named {name!r}"
                    )
            reason = self._quarantined.get(canonical)
        if for_predict and reason is not None:
            raise DeploymentQuarantinedError(
                f"deployment {canonical!r} is quarantined: {reason}"
            )
        return canonical

    def resolve(self, name: Optional[str] = None) -> _RemoteDeployment:
        return _RemoteDeployment(self._resolve_name(name), self)

    def resolve_for_predict(self, name: Optional[str] = None) -> _RemoteDeployment:
        return _RemoteDeployment(
            self._resolve_name(name, for_predict=True), self
        )

    # ------------------------------------------------------------ prediction
    def submit(self, name: Optional[str], request) -> Future:
        canonical = self._resolve_name(name, for_predict=True)
        call = self._dispatch(
            OP_SUBMIT,
            {"model": canonical, "request": request},
            key=request_affinity_key(request),
        )
        return call.future

    def predict(self, name: Optional[str], request):
        return self.submit(name, request).result()

    def predict_many(self, name: Optional[str], requests) -> List[object]:
        canonical = self._resolve_name(name, for_predict=True)
        requests = list(requests)
        if not requests:
            return []
        # Group by the affinity-chosen replica, one RPC per group — batch
        # members keep their cache affinity without one-RPC-per-graph cost.
        groups: Dict[int, List[int]] = {}
        for index, request in enumerate(requests):
            handle = self._pick(request_affinity_key(request), set())
            if handle is None:
                raise ReplicaUnavailableError(
                    "no ready replica available for 'predict_many' "
                    f"(pool of {self._config.replicas})"
                )
            groups.setdefault(handle.slot, []).append(index)
        calls: List[Tuple[_PendingCall, List[int]]] = []
        for slot in sorted(groups):
            indices = groups[slot]
            call = _PendingCall(
                OP_PREDICT_MANY,
                {
                    "model": canonical,
                    "requests": [requests[i] for i in indices],
                },
            )
            with self._routing:
                handle = self._handles[slot]
            if handle is None or not self._send(handle, call):
                self._dispatch_call(call)  # affinity miss: any ready replica
            calls.append((call, indices))
        results: List[object] = [None] * len(requests)
        first_exc: Optional[BaseException] = None
        for call, indices in calls:
            try:
                group_results = call.future.result()
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
                continue
            for position, index in enumerate(indices):
                results[index] = group_results[position]
        if first_exc is not None:
            raise first_exc
        return results

    # ----------------------------------------------------------------- admin
    def _ready_handles(self) -> List[_ReplicaHandle]:
        with self._routing:
            handles = [h for h in self._handles if h is not None]
        ready = []
        for handle in handles:
            with handle.mutex:
                if handle.state == "ready":
                    ready.append(handle)
        return ready

    def _admin_broadcast(self, action: str, args: Dict[str, object]) -> List[object]:
        handles = self._ready_handles()
        if not handles:
            raise ReplicaUnavailableError(
                f"no ready replica to apply admin operation {action!r}"
            )
        calls = []
        for handle in handles:
            call = _PendingCall(OP_ADMIN, {"action": action, "args": args})
            if self._send(handle, call):
                calls.append(call)
        if not calls:
            raise ReplicaUnavailableError(
                f"no ready replica accepted admin operation {action!r}"
            )
        results: List[object] = []
        first_exc: Optional[BaseException] = None
        for call in calls:
            try:
                results.append(call.future.result(timeout=_RPC_TIMEOUT_S))
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            # Replicas may have diverged (op landed on some); reconcile
            # everyone back to the desired state before surfacing the
            # failure, so a half-applied mutation can't linger.
            self._sync_all_best_effort()
            raise first_exc
        return results

    def _desired_state(self) -> Dict[str, object]:
        with self._routing:
            return {
                "specs": [dict(spec) for spec in self._specs.values()],
                "aliases": sorted(self._aliases.items()),
                "default": self._default,
                "quarantined": dict(self._quarantined),
            }

    def _sync_handle(self, handle: _ReplicaHandle) -> None:
        call = _PendingCall(
            OP_ADMIN, {"action": "sync", "args": self._desired_state()}
        )
        if not self._send(handle, call):
            raise ReplicaUnavailableError(
                f"replica {handle.slot} died before it could be synced"
            )
        call.future.result(timeout=_RPC_TIMEOUT_S)

    def _sync_all_best_effort(self) -> None:
        state = self._desired_state()
        for handle in self._ready_handles():
            call = _PendingCall(OP_ADMIN, {"action": "sync", "args": state})
            if not self._send(handle, call):
                continue
            try:
                call.future.result(timeout=_RPC_TIMEOUT_S)
            except Exception:
                pass

    def load(self, spec: DeploymentSpec, replace: bool = False) -> _RemoteDeployment:
        spec_data = deployment_spec_to_dict(spec)
        results = self._admin_broadcast(
            "load", {"spec": spec_data, "replace": replace}
        )
        with self._routing:
            self._specs[spec.name] = spec_data
            if self._default is None:
                self._default = spec.name
        return _RemoteDeployment(spec.name, self, describe_payload=results[0])

    def unload(self, name: str) -> _RemoteDeployment:
        self._admin_broadcast("unload", {"name": name})
        with self._routing:
            self._specs.pop(name, None)
            self._quarantined.pop(name, None)
            if self._default == name:
                remaining = list(self._specs)
                self._default = remaining[0] if len(remaining) == 1 else None
        return _RemoteDeployment(name, self)

    def reload(self, name: str) -> _RemoteDeployment:
        results = self._admin_broadcast("reload", {"name": name})
        return _RemoteDeployment(name, self, describe_payload=results[0])

    def alias(self, alias: str, target: str) -> None:
        self._admin_broadcast("alias", {"alias": alias, "target": target})
        with self._routing:
            self._aliases[alias] = target

    def unalias(self, alias: str) -> None:
        self._admin_broadcast("unalias", {"alias": alias})
        with self._routing:
            self._aliases.pop(alias, None)

    def set_default(self, name: str) -> None:
        self._admin_broadcast("set_default", {"name": name})
        with self._routing:
            self._default = name

    def quarantine(self, name: str, reason: str = "operator request") -> None:
        canonical = self._resolve_name(name)
        self._admin_broadcast(
            "quarantine", {"name": canonical, "reason": str(reason)}
        )
        with self._routing:
            self._quarantined[canonical] = str(reason)

    def unquarantine(self, name: str) -> None:
        canonical = self._resolve_name(name)
        self._admin_broadcast("unquarantine", {"name": canonical})
        with self._routing:
            self._quarantined.pop(canonical, None)

    def quarantined(self) -> Dict[str, str]:
        with self._routing:
            return dict(self._quarantined)

    def reload_cost_model(
        self,
        name: str = DEFAULT_COST_MODEL_NAME,
        version: Optional[str] = None,
    ) -> Dict[str, object]:
        results = self._admin_broadcast(
            "reload_cost_model", {"name": name, "version": version}
        )
        with self._routing:
            self._cost_model_ref = (name, version)
        return results[0]

    # ---------------------------------------------------------- introspection
    def names(self) -> List[str]:
        with self._routing:
            return sorted(self._specs)

    def aliases(self) -> Dict[str, str]:
        with self._routing:
            return dict(self._aliases)

    @property
    def default_name(self) -> Optional[str]:
        with self._routing:
            return self._default

    def __contains__(self, name: str) -> bool:
        with self._routing:
            return name in self._specs or name in self._aliases

    def __len__(self) -> int:
        with self._routing:
            return len(self._specs)

    def _introspect_one(self, what: str, args: Dict[str, object]):
        call = self._dispatch(OP_INTROSPECT, {"what": what, "args": args}, key=None)
        return call.future.result(timeout=_RPC_TIMEOUT_S)

    def _introspect_broadcast(
        self, what: str, args: Dict[str, object]
    ) -> List[Tuple[_ReplicaHandle, object]]:
        """Best-effort fan-out: replicas that die mid-question are simply
        absent from the answer (metrics must not 503 because one replica
        is being respawned)."""
        calls = []
        for handle in self._ready_handles():
            call = _PendingCall(OP_INTROSPECT, {"what": what, "args": args})
            call.retryable = False  # per-replica question; no failover
            if self._send(handle, call):
                calls.append((handle, call))
        results = []
        for handle, call in calls:
            try:
                results.append((handle, call.future.result(timeout=_RPC_TIMEOUT_S)))
            except Exception:
                continue
        return results

    def describe(self) -> Dict[str, object]:
        payload = self._introspect_one("describe", {})
        payload["service"] = "replica-pool"
        payload["replicas"] = self.replica_status()
        return payload

    def model_health(self, name: Optional[str] = None) -> Dict[str, object]:
        canonical = self._resolve_name(name)
        return self._introspect_one("model_health", {"name": canonical})

    def model_drift(self, name: Optional[str] = None) -> Dict[str, object]:
        canonical = self._resolve_name(name)
        return self._introspect_one("drift", {"name": canonical})

    def _merged_model_snapshot(self, name: Optional[str]) -> Dict[str, object]:
        canonical = self._resolve_name(name)
        replies = self._introspect_broadcast("model_snapshot", {"name": canonical})
        snapshots = [reply["snapshot"] for _, reply in replies]
        windows = [reply["window"] for _, reply in replies]
        merged = aggregate_snapshots(snapshots, latency_windows=windows)
        merged["replicas"] = len(snapshots)
        return merged

    def snapshot(self) -> Dict[str, object]:
        """Pool-wide ``/metrics`` payload, shaped like the hub's.

        Per-model sections and the overall aggregate are merged with
        :func:`~repro.serving.stats.aggregate_snapshots`, feeding it the
        workers' *raw* latency windows so the pooled percentiles are real
        statistics over all replicas' samples (``merged_from_raw_windows``
        stays true), never percentiles-of-percentiles.
        """
        replies = self._introspect_broadcast("metrics", {})
        model_snaps: Dict[str, List[Dict[str, object]]] = {}
        model_windows: Dict[str, List[List[float]]] = {}
        all_snaps: List[Dict[str, object]] = []
        all_windows: List[List[float]] = []
        per_replica: Dict[str, Dict[str, object]] = {}
        for handle, reply in replies:
            for model, snap in (reply.get("models") or {}).items():
                model_snaps.setdefault(model, []).append(snap)
                window = (reply.get("windows") or {}).get(model, [])
                model_windows.setdefault(model, []).append(window)
                all_snaps.append(snap)
                all_windows.append(window)
            per_replica[str(handle.slot)] = {
                "pid": handle.pid,
                "generation": handle.generation,
                "served": handle.served,
                "cache": reply.get("cache"),
                "pool": reply.get("pool"),
                "journal": reply.get("journal"),
                "checkpoint": reply.get("checkpoint"),
            }
        models = {
            model: aggregate_snapshots(
                snaps, latency_windows=model_windows[model]
            )
            for model, snaps in model_snaps.items()
        }
        with self._routing:
            aliases = dict(self._aliases)
            default = self._default
        return {
            "uptime_s": time.monotonic() - self._created_monotonic,
            "models": models,
            "aggregate": aggregate_snapshots(all_snaps, latency_windows=all_windows),
            "aliases": aliases,
            "default": default,
            # No process-local infrastructure: the per-replica copies live
            # under "replicas", mirroring where the processes actually are.
            "cache": None,
            "pool": None,
            "journal": None,
            "checkpoint": None,
            "replicas": per_replica,
        }

    def capacity_report(self, name: Optional[str] = None) -> Dict[str, object]:
        """Pool capacity: per-model per-replica verdicts, with the
        predicted sustainable QPS *summed* across replicas — capacity is
        the one metric that genuinely adds up when processes multiply."""
        if name is not None:
            self._resolve_name(name)
        replies = self._introspect_broadcast("capacity", {"name": name})
        models: Dict[str, Dict[str, object]] = {}
        cost_model = None
        total_qps = 0.0
        any_qps = False
        for handle, reply in replies:
            if cost_model is None:
                cost_model = reply.get("cost_model")
            for model, entry in (reply.get("models") or {}).items():
                merged = models.setdefault(
                    model,
                    {"replicas": {}, "predicted": {"sustainable_qps": None}},
                )
                merged["replicas"][str(handle.slot)] = entry
                predicted = entry.get("predicted")
                if isinstance(predicted, dict):
                    qps = predicted.get("sustainable_qps")
                    if isinstance(qps, (int, float)):
                        current = merged["predicted"]["sustainable_qps"] or 0.0
                        merged["predicted"]["sustainable_qps"] = current + float(qps)
                        total_qps += float(qps)
                        any_qps = True
        quarantined = self.quarantined()
        for model, merged in models.items():
            merged["quarantined"] = quarantined.get(model)
        return {
            "models": models,
            "cost_model": cost_model,
            "total_sustainable_qps": total_qps if any_qps else None,
            "replicas": {
                "ready": len(replies),
                "total": self._config.replicas,
            },
        }

    def replica_status(self) -> List[Dict[str, object]]:
        with self._routing:
            handles = [h for h in self._handles if h is not None]
        status = []
        for handle in handles:
            with handle.mutex:
                status.append(
                    {
                        "slot": handle.slot,
                        "generation": handle.generation,
                        "pid": handle.pid,
                        "state": handle.state,
                        "served": handle.served,
                        "pending": len(handle.pending),
                    }
                )
        return status

    # ------------------------------------------------------------ monitoring
    def _monitor_loop(self) -> None:
        interval = self._config.heartbeat_interval_s
        while True:
            self._wake.wait(interval)
            self._wake.clear()
            with self._routing:
                if self._stopping:
                    return
            self._tick()

    def _tick(self) -> None:
        now = time.monotonic()
        with self._routing:
            slots = list(range(len(self._handles)))
        for slot in slots:
            with self._routing:
                if self._stopping:
                    return
                handle = self._handles[slot]
            if handle is None:
                continue
            with handle.mutex:
                state = handle.state
            if state == "dead":
                self._respawn(slot, handle)
                continue
            if state != "ready":
                continue
            if not handle.process.is_alive():
                # The reader sees EOF too, but don't wait for it: fail the
                # slot over now so its pending calls move immediately.
                self._on_connection_lost(handle)
                self._respawn(slot, handle)
                continue
            if now - handle.last_pong > self._config.heartbeat_timeout_s:
                # A wedged worker: kill it; the pipe EOF fails its calls
                # over and the next tick respawns the slot.
                handle.process.kill()
                continue
            self._ping(handle)
            recycle_after = self._config.recycle_after
            if recycle_after is not None and handle.served >= recycle_after:
                self._replace_slot(slot, handle)

    def _ping(self, handle: _ReplicaHandle) -> None:
        call = _PendingCall(OP_PING, {})
        call.retryable = False

        def _pong(future: Future) -> None:
            if future.cancelled() or future.exception() is not None:
                return
            payload = future.result()
            handle.served = int(payload.get("served", handle.served))
            handle.last_pong = time.monotonic()

        call.future.add_done_callback(_pong)
        self._send(handle, call)

    def _respawn(self, slot: int, old: _ReplicaHandle) -> None:
        with self._routing:
            if self._handles[slot] is not old or self._draining:
                return
        try:
            old.conn.close()
        except OSError:
            pass
        replacement = self._spawn(slot)
        deadline = time.monotonic() + self._config.spawn_timeout_s
        try:
            self._await_ready(replacement, deadline)
            # Catch up with any admin mutation that landed while this
            # worker was being spawned.
            self._sync_handle(replacement)
        except Exception:
            replacement.process.kill()
            return  # next tick retries the respawn
        with self._routing:
            if self._handles[slot] is old:
                self._handles[slot] = replacement
                return
        # Lost a race (shutdown); retire the fresh worker again.
        replacement.process.kill()

    def _replace_slot(self, slot: int, old: _ReplicaHandle) -> None:
        """Recycle: replacement first, swap, then drain the old worker —
        the slot never has zero ready processes, so traffic never pauses."""
        replacement = self._spawn(slot)
        deadline = time.monotonic() + self._config.spawn_timeout_s
        try:
            self._await_ready(replacement, deadline)
            self._sync_handle(replacement)
        except Exception:
            replacement.process.kill()
            return
        with self._routing:
            if self._handles[slot] is not old or self._draining:
                swapped = False
            else:
                self._handles[slot] = replacement
                swapped = True
        if not swapped:
            replacement.process.kill()
            return
        with old.mutex:
            if old.state == "ready":
                old.state = "draining"
        drain_deadline = time.monotonic() + self._config.drain_timeout_s
        while time.monotonic() < drain_deadline:
            with old.mutex:
                remaining = len(old.pending)
                state = old.state
            if remaining == 0 or state == "dead":
                break
            time.sleep(0.02)
        call = _PendingCall(OP_SHUTDOWN, {})
        if self._send(old, call):
            try:
                call.future.result(timeout=self._config.drain_timeout_s)
            except Exception:
                pass
        old.process.join(timeout=self._config.drain_timeout_s)
        if old.process.is_alive():
            old.process.kill()
        try:
            old.conn.close()
        except OSError:
            pass
