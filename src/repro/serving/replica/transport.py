"""Message framing and the exception codec of the replica pipe protocol.

Supervisor and worker exchange pickled tuples over one duplex
:func:`multiprocessing.Pipe` per replica:

* supervisor → worker: ``(request_id, op, payload)`` where ``op`` is one
  of the ``OP_*`` constants;
* worker → supervisor: ``(request_id, STATUS_OK, result)`` or
  ``(request_id, STATUS_ERR, encoded_exception)``, plus the two
  unsolicited lifecycle messages :data:`READY_ID`/``STATUS_READY``
  (handshake after the worker's hub is built and warmed) and
  ``STATUS_FATAL`` (the hub could not be built — the spawn fails loudly
  instead of hanging the ready-wait).

Exceptions do not pickle reliably across versions (and a traceback
object never does), so hub errors cross the pipe as ``{"kind", "message",
...}`` dicts: :func:`encode_exception` flattens the exception types the
serving stack raises on purpose, and :func:`decode_exception` rebuilds
the *same* type supervisor-side, so the HTTP layer's exception → status
mapping behaves identically whether a model is local or three processes
away.  Unknown worker-side types decode to :class:`ReplicaError` (a
server-side failure, surfaced as such).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...graphs.graph import Edge, Node, ProgramGraph
from ..costmodel import OverCapacityError
from ..deployment import DeploymentSpecError
from ..ensemble import EnsemblePredictionResult
from ..hub import (
    DeploymentExistsError,
    DeploymentNotFoundError,
    DeploymentQuarantinedError,
    HubError,
)
from ..registry import ArtifactNotFoundError
from ..service import PredictionResult
from .config import DrainingError, ReplicaConfig, ReplicaError, ReplicaUnavailableError

#: request ops.
OP_SUBMIT = "submit"
OP_PREDICT_MANY = "predict_many"
OP_PING = "ping"
OP_ADMIN = "admin"
OP_INTROSPECT = "introspect"
OP_SHUTDOWN = "shutdown"

#: ops that are idempotent — pure inference, or read-only introspection —
#: safe to transparently re-run on another replica when the one holding
#: them dies mid-flight.
RETRYABLE_OPS = frozenset({OP_SUBMIT, OP_PREDICT_MANY, OP_INTROSPECT})

#: reply statuses.
STATUS_OK = "ok"
STATUS_ERR = "err"
STATUS_READY = "ready"
STATUS_FATAL = "fatal"

#: request id of the unsolicited lifecycle messages.
READY_ID = -1

#: exception type <-> wire kind (order matters: subclasses first, so the
#: most specific kind wins when encoding).
_KINDS: Tuple[Tuple[str, type], ...] = (
    ("over-capacity", OverCapacityError),
    ("artifact-not-found", ArtifactNotFoundError),
    ("deployment-not-found", DeploymentNotFoundError),
    ("deployment-quarantined", DeploymentQuarantinedError),
    ("deployment-exists", DeploymentExistsError),
    ("invalid-spec", DeploymentSpecError),
    ("draining", DrainingError),
    ("replica-unavailable", ReplicaUnavailableError),
    ("replica", ReplicaError),
    ("hub", HubError),
)
_DECODERS: Dict[str, type] = {kind: type_ for kind, type_ in _KINDS}

#: every type sent through the pipe RPC as (part of) a request or reply
#: payload.  Declarative on purpose: the ``pickle-safety`` lint rule
#: walks each class (transitively) and rejects process-local state —
#: locks, threads, open files — before it can blow up inside a pickle
#: call under load.
WIRE_TYPES: Tuple[type, ...] = (
    ReplicaConfig,
    ProgramGraph,
    Node,
    Edge,
    PredictionResult,
    EnsemblePredictionResult,
)


def encode_exception(exc: BaseException) -> Dict[str, object]:
    """Flatten one exception into the wire dict the pipe can carry."""
    for kind, exc_type in _KINDS:
        if isinstance(exc, exc_type):
            payload: Dict[str, object] = {"kind": kind, "message": str(exc)}
            if isinstance(exc, OverCapacityError):
                payload["retry_after_s"] = float(exc.retry_after_s)
            return payload
    return {
        "kind": "internal",
        "message": f"{type(exc).__name__}: {exc}",
    }


def decode_exception(payload: Dict[str, object]) -> Exception:
    """Rebuild the typed exception a worker encoded (see module doc)."""
    kind = payload.get("kind")
    message = str(payload.get("message", "replica worker error"))
    if kind == "over-capacity":
        return OverCapacityError(
            message, retry_after_s=float(payload.get("retry_after_s", 1.0))
        )
    exc_type = _DECODERS.get(str(kind))
    if exc_type is not None:
        return exc_type(message)
    return ReplicaError(f"replica worker failed: {message}")
