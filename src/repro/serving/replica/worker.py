"""Replica worker: one long-lived process hosting a full ModelHub.

Spawned by the :class:`~repro.serving.replica.supervisor.ReplicaSupervisor`
with a :class:`~repro.serving.replica.config.ReplicaConfig` snapshot, the
worker builds its own private :class:`~repro.serving.hub.ModelHub`
(registry, shared cache, batcher pool, per-slot journal subdirectory,
per-slot checkpoint dump doubling as the warm-up file), sends the ready
handshake, and then answers pipe requests until told to shut down:

* prediction ops (``submit``/``predict_many``) run on a small thread
  pool so concurrent RPCs from the supervisor overlap and coalesce in
  the hub's micro-batchers, exactly as concurrent HTTP handler threads
  do in the single-process server;
* control ops (``ping``/``admin``/``introspect``) are answered inline on
  the pipe reader thread, so a worker buried in inference still answers
  heartbeats immediately;
* the ``sync`` admin op reconciles the hub against the supervisor's
  current desired state — how a replica respawned mid-flight catches up
  with runtime ``load``/``alias``/``quarantine`` mutations.

Failures stay typed across the pipe: anything the hub raises is encoded
by :mod:`~repro.serving.replica.transport` and rebuilt supervisor-side,
so remote errors surface with the same HTTP mapping as local ones.
"""

from __future__ import annotations

import os
import signal
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from ...concurrency import TrackedLock
from ..costmodel import cost_model_summary
from ..deployment import deployment_spec_from_dict, deployment_spec_to_dict
from ..hub import ModelHub
from .config import ReplicaConfig, ReplicaError
from .transport import (
    OP_ADMIN,
    OP_INTROSPECT,
    OP_PING,
    OP_PREDICT_MANY,
    OP_SHUTDOWN,
    OP_SUBMIT,
    READY_ID,
    STATUS_ERR,
    STATUS_FATAL,
    STATUS_OK,
    STATUS_READY,
    encode_exception,
)


def build_worker_hub(config: ReplicaConfig, slot: int) -> ModelHub:
    """The slot's private hub, built from the supervisor's desired state.

    The per-slot checkpoint dump is wired as **both** the checkpoint path
    and the warm-up path: whatever cache the previous incarnation of this
    slot persisted is loaded before the ready handshake, so a respawned
    replica enters rotation hot (the warm hand-off).
    """
    checkpoint_path = config.slot_checkpoint_path(slot)
    hub = ModelHub(
        config.registry_root,
        cache_capacity=max(int(config.cache_capacity), 1),
        enable_cache=config.enable_cache,
        warmup_path=checkpoint_path,
        checkpoint_path=checkpoint_path,
        checkpoint_interval_s=config.checkpoint_interval_s,
        pool_workers=config.pool_workers,
        journal_dir=config.slot_journal_dir(slot),
        journal_record_graphs=config.journal_record_graphs,
    )
    if config.cost_model is not None:
        name, version = config.cost_model
        hub.reload_cost_model(name, version)
    for spec_data in config.specs:
        hub.load(deployment_spec_from_dict(spec_data))
    for alias, target in config.aliases:
        hub.alias(alias, target)
    if config.default:
        hub.set_default(config.default)
    return hub


class ReplicaWorker:
    """The request loop of one replica process."""

    def __init__(self, conn, config: ReplicaConfig, slot: int, generation: int):
        self._conn = conn
        self._config = config
        self._slot = slot
        self._generation = generation
        self._hub: Optional[ModelHub] = None
        self._send_lock = TrackedLock("replica.worker.send", allow_blocking=True)
        self._executor = ThreadPoolExecutor(
            max_workers=config.worker_threads,
            thread_name_prefix=f"repro-replica-{slot}",
        )
        self._served = 0

    # --------------------------------------------------------------- replies
    def _reply(self, request_id: int, status: str, payload) -> None:
        # One lock serialises pipe writes: replies come from the reader
        # thread, the executor, and batcher-future callbacks alike.
        try:
            with self._send_lock:
                self._conn.send((request_id, status, payload))
        except (OSError, ValueError, BrokenPipeError):
            pass  # the supervisor is gone; the recv loop will notice

    def _reply_error(self, request_id: int, exc: BaseException) -> None:
        self._reply(request_id, STATUS_ERR, encode_exception(exc))

    # ----------------------------------------------------------- prediction
    def _handle_submit(self, request_id: int, payload: Dict[str, object]) -> None:
        hub = self._hub
        try:
            future = hub.submit(payload.get("model"), payload["request"])
        except BaseException as exc:  # typed hub errors cross the pipe
            self._reply_error(request_id, exc)
            return

        def _finish(done, request_id=request_id):
            exc = done.exception()
            if exc is not None:
                self._reply_error(request_id, exc)
            else:
                self._served += 1
                self._reply(request_id, STATUS_OK, done.result())

        future.add_done_callback(_finish)

    def _handle_predict_many(self, request_id: int, payload: Dict[str, object]) -> None:
        def _run():
            try:
                results = self._hub.predict_many(
                    payload.get("model"), payload["requests"]
                )
            except BaseException as exc:
                self._reply_error(request_id, exc)
                return
            self._served += len(results)
            self._reply(request_id, STATUS_OK, results)

        self._executor.submit(_run)

    # ---------------------------------------------------------------- admin
    def _admin(self, action: str, args: Dict[str, object]):
        hub = self._hub
        if action == "load":
            spec = deployment_spec_from_dict(args["spec"])
            deployment = hub.load(spec, replace=bool(args.get("replace", False)))
            return deployment.describe()
        if action == "unload":
            return {"unloaded": hub.unload(args["name"]).name}
        if action == "reload":
            return hub.reload(args["name"]).describe()
        if action == "alias":
            hub.alias(args["alias"], args["target"])
            return None
        if action == "unalias":
            hub.unalias(args["alias"])
            return None
        if action == "set_default":
            hub.set_default(args["name"])
            return None
        if action == "quarantine":
            hub.quarantine(args["name"], args.get("reason", "operator request"))
            return None
        if action == "unquarantine":
            hub.unquarantine(args["name"])
            return None
        if action == "reload_cost_model":
            model = hub.reload_cost_model(args["name"], args.get("version"))
            return cost_model_summary(model)
        if action == "sync":
            return self._sync(args)
        raise ReplicaError(f"unknown admin action {action!r}")

    def _sync(self, args: Dict[str, object]) -> Dict[str, object]:
        """Reconcile the hub against the supervisor's desired state.

        Runs right after the ready handshake of every (re)spawned worker:
        mutations that landed while this process was being spawned (a
        ``load`` racing the respawn, an alias flip, a quarantine) are
        applied here, so a replica can never enter rotation serving a
        stale model set.
        """
        hub = self._hub
        desired_specs = {
            str(spec["name"]): dict(spec) for spec in (args.get("specs") or [])
        }
        desired_aliases = {
            str(alias): str(target) for alias, target in (args.get("aliases") or [])
        }
        # Aliases first: a stale alias would block unloading its target.
        for alias, target in hub.aliases().items():
            if desired_aliases.get(alias) != target:
                hub.unalias(alias)
        for name in hub.names():
            if name not in desired_specs:
                hub.unload(name)
        for name, spec_data in desired_specs.items():
            spec = deployment_spec_from_dict(spec_data)
            if name not in hub.names():
                hub.load(spec)
            else:
                current = hub.resolve(name).spec
                if current is None or deployment_spec_to_dict(current) != spec_data:
                    hub.load(spec, replace=True)
        for alias, target in desired_aliases.items():
            if hub.aliases().get(alias) != target:
                hub.alias(alias, target)
        default = args.get("default")
        if isinstance(default, str) and hub.default_name != default:
            hub.set_default(default)
        desired_quarantined = {
            str(name): str(reason)
            for name, reason in (args.get("quarantined") or {}).items()
        }
        for name in hub.quarantined():
            if name not in desired_quarantined:
                hub.unquarantine(name)
        for name, reason in desired_quarantined.items():
            hub.quarantine(name, reason)
        return {"models": hub.names()}

    # ---------------------------------------------------------- introspection
    def _introspect(self, what: str, args: Dict[str, object]):
        hub = self._hub
        if what == "describe":
            return hub.describe()
        if what == "model_health":
            return hub.model_health(args.get("name"))
        if what == "model_describe":
            return hub.resolve(args.get("name")).predictor.describe()
        if what == "model_snapshot":
            predictor = hub.resolve(args.get("name")).predictor
            stats = getattr(predictor, "stats", None)
            window = (
                stats.latency_values()
                if stats is not None and hasattr(stats, "latency_values")
                else []
            )
            return {"snapshot": predictor.snapshot(), "window": window}
        if what == "drift":
            return hub.model_drift(args.get("name"))
        if what == "capacity":
            return hub.capacity_report(args.get("name"))
        if what == "metrics":
            return self._metrics()
        raise ReplicaError(f"unknown introspection {what!r}")

    def _metrics(self) -> Dict[str, object]:
        """Per-model snapshots **plus raw latency windows** — the honest
        inputs :func:`~repro.serving.stats.aggregate_snapshots` needs to
        pool percentiles across replicas."""
        hub = self._hub
        models: Dict[str, object] = {}
        windows: Dict[str, list] = {}
        for name in hub.names():
            predictor = hub.resolve(name).predictor
            models[name] = predictor.snapshot()
            stats = getattr(predictor, "stats", None)
            if stats is not None and hasattr(stats, "latency_values"):
                windows[name] = stats.latency_values()
        return {
            "models": models,
            "windows": windows,
            "cache": hub.cache.stats() if hub.cache is not None else None,
            "pool": hub.pool.telemetry(),
            "journal": hub.journal.stats() if hub.journal is not None else None,
            "checkpoint": (
                hub.checkpoint.stats() if hub.checkpoint is not None else None
            ),
        }

    # ------------------------------------------------------------- main loop
    def run(self) -> None:
        try:
            self._hub = build_worker_hub(self._config, self._slot)
            self._hub.start()
        except BaseException as exc:
            self._reply(READY_ID, STATUS_FATAL, encode_exception(exc))
            self._conn.close()
            return
        self._reply(
            READY_ID,
            STATUS_READY,
            {
                "pid": os.getpid(),
                "slot": self._slot,
                "generation": self._generation,
                "models": self._hub.names(),
            },
        )
        try:
            while True:
                try:
                    message = self._conn.recv()
                except (EOFError, OSError):
                    break  # supervisor gone: drain and exit
                request_id, op, payload = message
                if op == OP_SHUTDOWN:
                    # Drain in order: in-flight prediction RPCs first, then
                    # the hub (batchers, final checkpoint, journal close).
                    self._executor.shutdown(wait=True)
                    self._hub.stop()
                    self._hub = None
                    self._reply(request_id, STATUS_OK, {"served": self._served})
                    return
                if op == OP_PING:
                    self._reply(
                        request_id,
                        STATUS_OK,
                        {"pid": os.getpid(), "served": self._served},
                    )
                elif op == OP_SUBMIT:
                    self._handle_submit(request_id, payload)
                elif op == OP_PREDICT_MANY:
                    self._handle_predict_many(request_id, payload)
                elif op == OP_ADMIN:
                    try:
                        result = self._admin(payload["action"], payload.get("args") or {})
                    except BaseException as exc:
                        self._reply_error(request_id, exc)
                    else:
                        self._reply(request_id, STATUS_OK, result)
                elif op == OP_INTROSPECT:
                    try:
                        result = self._introspect(
                            payload["what"], payload.get("args") or {}
                        )
                    except BaseException as exc:
                        self._reply_error(request_id, exc)
                    else:
                        self._reply(request_id, STATUS_OK, result)
                else:
                    self._reply_error(
                        request_id, ReplicaError(f"unknown op {op!r}")
                    )
        finally:
            self._executor.shutdown(wait=False)
            if self._hub is not None:
                self._hub.stop()
            try:
                self._conn.close()
            except OSError:
                pass


def worker_main(conn, config: ReplicaConfig, slot: int, generation: int) -> None:
    """Process entry point (must stay importable: spawn/forkserver re-import
    this module in the child)."""
    # The supervisor owns shutdown: a terminal Ctrl-C goes to the whole
    # foreground process group, and the workers must keep draining while
    # the supervisor runs its graceful stop.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    ReplicaWorker(conn, config, slot, generation).run()
