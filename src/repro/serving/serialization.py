"""JSON round-trips for the deployable artefacts.

Everything the registry writes besides the weight arrays is JSON: the
vocabulary, the reduced label space (machine name + configurations), the
static model hyper-parameters and the hybrid classifier.  Keeping these
human-readable makes artefact directories debuggable with ``cat`` and keeps
the integrity story simple (one checksum per file).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List

from ..core.hybrid_model import HybridStaticDynamicClassifier
from ..core.labeling import LabelSpace
from ..core.static_model import StaticModelConfig
from ..graphs.vocabulary import Vocabulary
from ..numasim.configuration import Configuration
from ..numasim.prefetchers import PrefetcherSetting

# --------------------------------------------------------------- vocabulary


def vocabulary_to_dict(vocabulary: Vocabulary) -> Dict[str, object]:
    return {"tokens": vocabulary.tokens}


def vocabulary_from_dict(data: Dict[str, object]) -> Vocabulary:
    return Vocabulary(list(data["tokens"]))


# ------------------------------------------------------------ configurations


def configuration_to_dict(configuration: Configuration) -> Dict[str, object]:
    return {
        "threads": configuration.threads,
        "nodes": configuration.nodes,
        "thread_mapping": configuration.thread_mapping,
        "page_mapping": configuration.page_mapping,
        "prefetcher_mask": configuration.prefetchers.mask,
    }


def configuration_from_dict(data: Dict[str, object]) -> Configuration:
    return Configuration(
        threads=int(data["threads"]),
        nodes=int(data["nodes"]),
        thread_mapping=str(data["thread_mapping"]),
        page_mapping=str(data["page_mapping"]),
        prefetchers=PrefetcherSetting.from_mask(int(data["prefetcher_mask"])),
    )


def label_space_to_dict(label_space: LabelSpace) -> Dict[str, object]:
    return {
        "machine_name": label_space.machine_name,
        "configurations": [
            configuration_to_dict(cfg) for cfg in label_space.configurations
        ],
    }


def label_space_from_dict(data: Dict[str, object]) -> LabelSpace:
    configurations: List[Configuration] = [
        configuration_from_dict(entry) for entry in data["configurations"]
    ]
    return LabelSpace(
        configurations=configurations, machine_name=str(data["machine_name"])
    )


# ------------------------------------------------------------------- models


def static_config_to_dict(config: StaticModelConfig) -> Dict[str, object]:
    return asdict(config)


def static_config_from_dict(data: Dict[str, object]) -> StaticModelConfig:
    return StaticModelConfig(**data)


def hybrid_to_dict(hybrid: HybridStaticDynamicClassifier) -> Dict[str, object]:
    return hybrid.to_dict()


def hybrid_from_dict(data: Dict[str, object]) -> HybridStaticDynamicClassifier:
    return HybridStaticDynamicClassifier.from_dict(data)
