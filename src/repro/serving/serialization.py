"""JSON round-trips for the deployable artefacts and the wire protocol.

Everything the registry writes besides the weight arrays is JSON: the
vocabulary, the reduced label space (machine name + configurations), the
static model hyper-parameters and the hybrid classifier.  Keeping these
human-readable makes artefact directories debuggable with ``cat`` and keeps
the integrity story simple (one checksum per file).

The same module defines the **wire format** the HTTP front-end
(:mod:`repro.serving.http`) speaks: a versioned JSON encoding of
:class:`~repro.graphs.graph.ProgramGraph` (``program_graph_to_dict`` /
``program_graph_from_dict``).  Decoding is strict — malformed payloads
raise :class:`SerializationError` with a message naming the offending
field, which the HTTP layer maps onto structured 4xx responses instead of
opaque 500s.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List

from ..core.hybrid_model import HybridStaticDynamicClassifier
from ..core.labeling import LabelSpace
from ..core.static_model import StaticModelConfig
from ..graphs.graph import FLOWS, NODE_KINDS, ProgramGraph
from ..graphs.vocabulary import Vocabulary
from ..numasim.configuration import Configuration
from ..numasim.prefetchers import PrefetcherSetting

#: bump when the JSON graph encoding changes incompatibly.
GRAPH_SCHEMA_VERSION = 1


class SerializationError(ValueError):
    """A JSON payload does not decode into the expected object.

    Raised with a human-readable message naming the offending field, so
    transport layers can surface it verbatim (the HTTP front-end turns it
    into a structured 400 response).
    """


def _require(data: Dict[str, object], key: str, what: str) -> object:
    if not isinstance(data, dict):
        raise SerializationError(f"{what} must be a JSON object, got {type(data).__name__}")
    if key not in data:
        raise SerializationError(f"{what} is missing required field {key!r}")
    return data[key]


def _require_int(data: Dict[str, object], key: str, what: str) -> int:
    value = _require(data, key, what)
    # bool is an int subclass, but "threads": true is a client bug.
    if isinstance(value, bool) or not isinstance(value, int):
        raise SerializationError(
            f"{what} field {key!r} must be an integer, got {type(value).__name__}"
        )
    return value


def _require_str(data: Dict[str, object], key: str, what: str) -> str:
    value = _require(data, key, what)
    if not isinstance(value, str):
        raise SerializationError(
            f"{what} field {key!r} must be a string, got {type(value).__name__}"
        )
    return value


def _optional_str(data: Dict[str, object], key: str, what: str) -> str:
    value = data.get(key, "")
    if not isinstance(value, str):
        raise SerializationError(
            f"{what} field {key!r} must be a string, got {type(value).__name__}"
        )
    return value


def _reject_unknown(data: Dict[str, object], allowed: tuple, what: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SerializationError(
            f"{what} carries unknown field(s) {unknown}; expected only {sorted(allowed)}"
        )


# --------------------------------------------------------------- vocabulary


def vocabulary_to_dict(vocabulary: Vocabulary) -> Dict[str, object]:
    return {"tokens": vocabulary.tokens}


def vocabulary_from_dict(data: Dict[str, object]) -> Vocabulary:
    tokens = _require(data, "tokens", "vocabulary")
    if not isinstance(tokens, (list, tuple)) or not all(
        isinstance(token, str) for token in tokens
    ):
        raise SerializationError("vocabulary field 'tokens' must be a list of strings")
    return Vocabulary(list(tokens))


# ------------------------------------------------------------ configurations


def configuration_to_dict(configuration: Configuration) -> Dict[str, object]:
    return {
        "threads": configuration.threads,
        "nodes": configuration.nodes,
        "thread_mapping": configuration.thread_mapping,
        "page_mapping": configuration.page_mapping,
        "prefetcher_mask": configuration.prefetchers.mask,
    }


def configuration_from_dict(data: Dict[str, object]) -> Configuration:
    return Configuration(
        threads=_require_int(data, "threads", "configuration"),
        nodes=_require_int(data, "nodes", "configuration"),
        thread_mapping=_require_str(data, "thread_mapping", "configuration"),
        page_mapping=_require_str(data, "page_mapping", "configuration"),
        prefetchers=PrefetcherSetting.from_mask(
            _require_int(data, "prefetcher_mask", "configuration")
        ),
    )


def label_space_to_dict(label_space: LabelSpace) -> Dict[str, object]:
    return {
        "machine_name": label_space.machine_name,
        "configurations": [
            configuration_to_dict(cfg) for cfg in label_space.configurations
        ],
    }


def label_space_from_dict(data: Dict[str, object]) -> LabelSpace:
    entries = _require(data, "configurations", "label space")
    if not isinstance(entries, list):
        raise SerializationError("label space field 'configurations' must be a list")
    configurations: List[Configuration] = [
        configuration_from_dict(entry) for entry in entries
    ]
    return LabelSpace(
        configurations=configurations,
        machine_name=_require_str(data, "machine_name", "label space"),
    )


# ------------------------------------------------------------ program graphs

_GRAPH_FIELDS = ("schema_version", "name", "nodes", "edges", "metadata")
_NODE_FIELDS = ("kind", "text", "function", "block", "features")
_EDGE_FIELDS = ("source", "target", "flow", "position")


def program_graph_to_dict(graph: ProgramGraph) -> Dict[str, object]:
    """Wire encoding of a :class:`ProgramGraph` (JSON-friendly, versioned).

    Node ids are implicit (list position), matching the invariant
    ``graph.nodes[i].id == i`` that :meth:`ProgramGraph.add_node` maintains.
    """
    return {
        "schema_version": GRAPH_SCHEMA_VERSION,
        "name": graph.name,
        "nodes": [
            {
                "kind": node.kind,
                "text": node.text,
                "function": node.function,
                "block": node.block,
                "features": {key: float(value) for key, value in node.features.items()},
            }
            for node in graph.nodes
        ],
        "edges": [
            {
                "source": edge.source,
                "target": edge.target,
                "flow": edge.flow,
                "position": edge.position,
            }
            for edge in graph.edges
        ],
        "metadata": dict(graph.metadata),
    }


def program_graph_from_dict(data: Dict[str, object]) -> ProgramGraph:
    """Decode (and strictly validate) one wire-encoded program graph.

    Every structural violation — unknown schema version, unknown or missing
    fields, a node kind / edge flow outside the ProGraML sets, an edge
    endpoint out of range — raises :class:`SerializationError` naming the
    problem, never a bare ``KeyError``/``TypeError``.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"graph must be a JSON object, got {type(data).__name__}"
        )
    _reject_unknown(data, _GRAPH_FIELDS, "graph")
    version = _require_int(data, "schema_version", "graph")
    if version != GRAPH_SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported graph schema_version {version}; this server speaks "
            f"version {GRAPH_SCHEMA_VERSION}"
        )
    graph = ProgramGraph(_require_str(data, "name", "graph"))

    nodes = _require(data, "nodes", "graph")
    if not isinstance(nodes, list):
        raise SerializationError("graph field 'nodes' must be a list")
    for i, entry in enumerate(nodes):
        what = f"node[{i}]"
        if not isinstance(entry, dict):
            raise SerializationError(f"{what} must be a JSON object")
        _reject_unknown(entry, _NODE_FIELDS, what)
        kind = _require_str(entry, "kind", what)
        if kind not in NODE_KINDS:
            raise SerializationError(
                f"{what} has unknown kind {kind!r}; expected one of {list(NODE_KINDS)}"
            )
        features = entry.get("features", {})
        if not isinstance(features, dict):
            raise SerializationError(f"{what} field 'features' must be an object")
        numeric: Dict[str, float] = {}
        for key, value in features.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SerializationError(
                    f"{what} feature {key!r} must be a number, got {type(value).__name__}"
                )
            numeric[str(key)] = float(value)
        node = graph.add_node(
            kind,
            _require_str(entry, "text", what),
            function=_optional_str(entry, "function", what),
            block=_optional_str(entry, "block", what),
        )
        # Assigned after construction, not splatted as keyword arguments: a
        # feature named "kind"/"text"/"function"/"block" is legal wire data
        # and must not collide with add_node's parameters.
        node.features.update(numeric)

    edges = _require(data, "edges", "graph")
    if not isinstance(edges, list):
        raise SerializationError("graph field 'edges' must be a list")
    for i, entry in enumerate(edges):
        what = f"edge[{i}]"
        if not isinstance(entry, dict):
            raise SerializationError(f"{what} must be a JSON object")
        _reject_unknown(entry, _EDGE_FIELDS, what)
        source = _require_int(entry, "source", what)
        target = _require_int(entry, "target", what)
        flow = _require_str(entry, "flow", what)
        if flow not in FLOWS:
            raise SerializationError(
                f"{what} has unknown flow {flow!r}; expected one of {list(FLOWS)}"
            )
        position = entry.get("position", 0)
        if isinstance(position, bool) or not isinstance(position, int):
            raise SerializationError(f"{what} field 'position' must be an integer")
        for end, value in (("source", source), ("target", target)):
            if not 0 <= value < graph.num_nodes:
                raise SerializationError(
                    f"{what} {end} {value} is out of range for {graph.num_nodes} node(s)"
                )
        graph.add_edge(graph.nodes[source], graph.nodes[target], flow, position=position)

    metadata = data.get("metadata", {})
    if not isinstance(metadata, dict):
        raise SerializationError("graph field 'metadata' must be an object")
    graph.metadata = dict(metadata)
    return graph


def program_graph_from_json(text: str) -> ProgramGraph:
    """Decode a JSON string (e.g. one HTTP body); truncated or otherwise
    invalid JSON raises :class:`SerializationError`, not ``JSONDecodeError``."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return program_graph_from_dict(data)


# ------------------------------------------------------------------- models


def static_config_to_dict(config: StaticModelConfig) -> Dict[str, object]:
    return asdict(config)


def static_config_from_dict(data: Dict[str, object]) -> StaticModelConfig:
    return StaticModelConfig(**data)


def hybrid_to_dict(hybrid: HybridStaticDynamicClassifier) -> Dict[str, object]:
    return hybrid.to_dict()


def hybrid_from_dict(data: Dict[str, object]) -> HybridStaticDynamicClassifier:
    return HybridStaticDynamicClassifier.from_dict(data)
