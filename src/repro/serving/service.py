"""Online prediction service over a trained static RGCN predictor.

Turns the offline one-shot pipeline into a request-serving layer:

* **sync** — :meth:`PredictionService.predict` / :meth:`predict_many`
  answer immediately, batching all cache misses of a call into as few RGCN
  forward passes as possible;
* **async** — :meth:`start` spins up a :class:`MicroBatcher` thread;
  :meth:`submit` enqueues a request and returns a future, and concurrent
  requests are coalesced into micro-batches (up to ``max_batch_size``
  requests or ``max_wait_s`` of queueing, whichever comes first);
* **cache** — results are keyed on the canonical graph fingerprint, so
  repeated regions skip the RGCN forward pass and replay the cached
  logits/graph vector.  (Encoding and fingerprinting are still paid per
  request — the fingerprint *is* the cache key; submit pre-encoded
  :class:`EncodedGraph` requests to amortise encoding too.)

Requests may be pre-encoded (:class:`EncodedGraph`) or raw
(:class:`ProgramGraph`, encoded on arrival with the service's vocabulary).
"""

from __future__ import annotations

import hashlib
import itertools
import os
import time
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..concurrency import TrackedLock
from ..core.hybrid_model import HybridStaticDynamicClassifier
from ..core.labeling import LabelSpace
from ..engine import PlanShape, build_plan
from ..gnn.losses import softmax
from ..gnn.model import StaticRGCNModel
from ..graphs.batching import collate
from ..graphs.features import EncodedGraph, GraphEncoder
from ..graphs.fingerprint import graph_fingerprint
from ..graphs.graph import ProgramGraph
from ..numasim.configuration import Configuration
from .batcher import MicroBatcher
from .cache import EmbeddingCache
from .costmodel import (
    LatencyCostModel,
    OverCapacityError,
    build_admission,
    estimate_capacity,
)
from .registry import ArtifactRef, ArtifactRegistry, LoadedArtifact
from .stats import ServingStats
from .trace import consume_queue_waits, span

#: a serving request: an already-encoded graph or a raw program graph.
Request = Union[EncodedGraph, ProgramGraph]

#: Process-wide micro-batch sequence numbers.  Every member of one forward
#: batch journals the same ``batch.seq``, which is what lets the cost-model
#: calibrator deduplicate per-request records back into per-batch rows.
_BATCH_SEQ = itertools.count(1)


@dataclass
class ServiceConfig:
    """Knobs of :class:`PredictionService`.

    .. deprecated::
        New code should declare deployments with
        :class:`~repro.serving.deployment.DeploymentSpec` and serve them
        through a :class:`~repro.serving.hub.ModelHub`, which subsumes
        these knobs (and ``EnsembleConfig``'s) in one record.  This class
        keeps working for directly-embedded single services.
    """

    max_batch_size: int = 32
    max_wait_s: float = 0.002
    cache_capacity: int = 1024
    enable_cache: bool = True
    latency_window: int = 4096
    #: worker threads draining the micro-batch queue.  Inference is
    #: stateless (no forward lock), so workers > 1 genuinely overlap
    #: forward passes; 1 keeps batch formation deterministic.
    batcher_workers: int = 1
    #: optional path to an ``EmbeddingCache.dump`` file loaded at
    #: construction (if it exists), so a restarted service starts hot.
    warmup_path: Optional[str] = None

    def __post_init__(self) -> None:
        validate_frontend_knobs(self)


def _model_digest(model: StaticRGCNModel) -> str:
    """Digest of the exact weights, used to namespace cache keys."""
    hasher = hashlib.sha256()
    for name, array in sorted(model.state_dict().items()):
        hasher.update(name.encode("utf-8"))
        hasher.update(np.ascontiguousarray(array).tobytes())
    return hasher.hexdigest()[:16]


def validate_frontend_knobs(config) -> None:
    """Range checks shared by :class:`ServiceConfig` and the ensemble's
    :class:`~repro.serving.ensemble.EnsembleConfig` (identical knobs)."""
    if config.max_batch_size < 1:
        raise ValueError("max_batch_size must be >= 1")
    if config.max_wait_s < 0:
        raise ValueError("max_wait_s must be >= 0")
    if config.cache_capacity < 1:
        raise ValueError("cache_capacity must be >= 1")
    if config.latency_window < 1:
        raise ValueError("latency_window must be >= 1")
    if config.batcher_workers < 1:
        raise ValueError("batcher_workers must be >= 1")


@dataclass
class PredictionResult:
    """Everything the service knows about one answered request."""

    name: str
    fingerprint: str
    label: int
    probabilities: np.ndarray
    graph_vector: np.ndarray
    configuration: Optional[Configuration]
    needs_profiling: Optional[bool]
    cache_hit: bool
    latency_s: float
    #: per-stage span timings of this request (see :mod:`repro.serving.trace`);
    #: batch-level spans report what the request's batch paid.
    trace: Optional[Dict[str, float]] = None


class ServingFrontend:
    """Shared plumbing of the serving front-ends.

    Subclasses provide ``encoder``, ``cache``, a ``config`` carrying
    ``max_batch_size``/``max_wait_s`` and the batch entry point
    :meth:`predict_many`; this base contributes request
    encoding/validation, the on-demand micro-batcher lifecycle behind
    :meth:`submit`, and cache persistence for warm restarts — one
    implementation for both the single-fold and the ensemble service.
    """

    encoder: GraphEncoder
    cache: Optional[EmbeddingCache]
    stats: ServingStats

    def __init__(self) -> None:
        self._batcher_lock = TrackedLock("frontend.batcher")
        self._batcher: Optional[MicroBatcher] = None
        self._auto_start = False
        #: optional MicroBatcher-compatible constructor; a
        #: :class:`~repro.serving.hub.ModelHub` injects its shared
        #: :meth:`~repro.serving.batcher.BatcherWorkerPool.batcher_factory`
        #: here so every deployment shares one worker-thread pool.
        self._batcher_factory = None
        #: optional prediction journal (see :mod:`repro.serving.journal`);
        #: bound by the hub via :meth:`bind_journal`, ``None`` costs nothing.
        self._journal = None
        self._journal_model: Optional[str] = None
        self._journal_artifact: Optional[str] = None
        #: SLO + cost-model bindings (see :meth:`bind_slo`): the latency
        #: target drives deadline-aware batch closing, the admission
        #: controller sheds load the budgets cannot absorb.  All ``None``
        #: by default — an unbound frontend behaves exactly as before.
        self._slo = None
        self._cost_model: Optional[LatencyCostModel] = None
        self._latency_target_s: Optional[float] = None
        self._admission = None

    def bind_slo(self, slo, cost_model: Optional[LatencyCostModel] = None) -> None:
        """Attach a deployment SLO (and optionally a calibrated cost model).

        ``slo`` is duck-typed (``p95_ms`` / ``max_queue_ms`` /
        ``max_concurrency`` / ``shed_policy`` attributes — the hub passes a
        :class:`~repro.serving.deployment.SLOConfig`).  Rebinding is safe
        under load: predictions read ``self._cost_model`` at call time, so
        a hot-reloaded calibration takes effect on the next batch.  The
        batcher's latency target is only picked up by batchers created
        after the bind, which is why the hub binds before installing.
        """
        self._slo = slo
        self._cost_model = cost_model
        p95_ms = getattr(slo, "p95_ms", None) if slo is not None else None
        self._latency_target_s = p95_ms / 1000.0 if p95_ms else None
        self._admission = build_admission(
            slo,
            cost_model,
            folds=self._fold_fanout(),
            max_batch_size=self.config.max_batch_size,
            name=self._journal_model or "frontend",
        )

    def _estimate_batch_cost(self, items: List[EncodedGraph]) -> Optional[float]:
        """Predicted latency of one batch of encoded graphs (the batcher's
        cost estimator); ``None`` until a cost model is bound."""
        model = self._cost_model
        if model is None:
            return None
        return model.predict_batch_latency(
            PlanShape.of_encoded(items), folds=self._fold_fanout()
        )

    @contextmanager
    def admission_guard(self, count: int = 1):
        """Reserve ``count`` admission slots for a sync call (no-op when no
        admission budget is bound).  Shed requests are counted in stats."""
        admission = self._admission
        if admission is None:
            yield
            return
        try:
            admission.acquire(count)
        except OverCapacityError:
            self.stats.record_shed(count)
            raise
        try:
            yield
        finally:
            admission.release(count)

    def capacity(self) -> Dict[str, object]:
        """Predicted vs measured operating point of this frontend.

        One entry of ``hub.capacity_report()``: the SLO knobs, the cost
        model's predicted sustainable throughput (``None`` until a model is
        bound), the measured p95 and whether it honours the target.
        """
        slo = self._slo
        model = self._cost_model
        measured_p95_s = self.stats.latency_percentile(95)
        target_s = self._latency_target_s
        entry: Dict[str, object] = {
            "slo": (
                {
                    "p95_ms": getattr(slo, "p95_ms", None),
                    "max_queue_ms": getattr(slo, "max_queue_ms", None),
                    "max_concurrency": getattr(slo, "max_concurrency", None),
                    "shed_policy": getattr(slo, "shed_policy", "none"),
                }
                if slo is not None
                else None
            ),
            "folds": self._fold_fanout(),
            "max_batch_size": self.config.max_batch_size,
            "measured_p95_s": measured_p95_s,
            "within_slo": (
                bool(measured_p95_s <= target_s) if target_s is not None else None
            ),
            "admission": (
                self._admission.stats() if self._admission is not None else None
            ),
            "predicted": None,
        }
        if model is not None:
            entry["predicted"] = estimate_capacity(
                model,
                folds=self._fold_fanout(),
                max_batch_size=self.config.max_batch_size,
                p95_target_s=target_s,
            )
        return entry

    def bind_journal(self, journal, model_name: str) -> None:
        """Attach a prediction journal; every answered request is recorded.

        ``model_name`` is the deployment name the records are filed under
        (the hub binds its deployment name; a directly-embedded service can
        bind any label).  The resolved artifact identity is captured once,
        here, so the hot path never recomputes it.
        """
        self._journal = journal
        self._journal_model = model_name
        self._journal_artifact = self._journal_identity()

    def _journal_identity(self) -> Optional[str]:
        """Resolved artifact version string recorded with every journal entry."""
        return None

    # ----------------------------------------------------------- sync paths
    def predict(self, request: Request):
        """Answer one request (batch-of-one on a cache miss)."""
        return self.predict_many([request])[0]

    def predict_many(self, requests: Sequence[Request]) -> List[object]:
        """Answer several requests with as few forward passes as possible.

        Cache misses are grouped into batches of up to ``max_batch_size``
        graphs and handed to the subclass's :meth:`_forward_batch`; hits
        (and in-call duplicates) replay cached rows without touching any
        model.
        """
        start = time.perf_counter()
        # Queue waits published by the batcher worker for exactly this call
        # (None on the direct sync path).
        queue_waits = consume_queue_waits(len(requests))
        encoded = [self._encode(request) for request in requests]
        fingerprints = [graph_fingerprint(graph) for graph in encoded]

        traces: List[Dict[str, float]] = [{} for _ in encoded]
        if queue_waits is not None:
            for trace, wait in zip(traces, queue_waits):
                trace["queue_wait_s"] = wait
                self.stats.record_stage("queue_wait", wait)

        rows: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * len(encoded)
        hit_flags = [False] * len(encoded)
        pending: List[int] = []
        seen_pending: Dict[str, List[int]] = {}
        for i, fingerprint in enumerate(fingerprints):
            if fingerprint in seen_pending:
                # Duplicate within one call: compute once, share the row
                # (checked first so duplicates don't inflate cache misses).
                seen_pending[fingerprint].append(i)
                continue
            entry = (
                self.cache.get(self._cache_key(fingerprint))
                if self.cache is not None
                else None
            )
            if entry is not None:
                rows[i] = (entry.logits, entry.graph_vector)
                hit_flags[i] = True
            else:
                seen_pending[fingerprint] = [i]
                pending.append(i)
        lookup_latency = time.perf_counter() - start
        # The encode+fingerprint+lookup phase is one shared pass over the
        # whole call; every request of the call paid it.
        self.stats.record_stage("cache_lookup", lookup_latency)
        for trace in traces:
            trace["cache_lookup_s"] = lookup_latency

        batch_sizes = [0] * len(encoded)  # 0 = answered from cache
        batch_infos: List[Optional[Dict[str, int]]] = [None] * len(encoded)
        for offset in range(0, len(pending), self.config.max_batch_size):
            chunk = pending[offset : offset + self.config.max_batch_size]
            chunk_graphs = [encoded[i] for i in chunk]
            batch = collate(chunk_graphs)
            # The collated shape, journalled with every member of the batch:
            # the cost-model calibrator's features.  Computed from the
            # encoded graphs (not the built plan) so calibration and the
            # batcher's pre-collation predictions share one feature scale.
            shape = PlanShape.of_encoded(chunk_graphs)
            batch_info = {
                "seq": next(_BATCH_SEQ),
                "graphs": shape.num_graphs,
                "nodes": shape.num_nodes,
                "edges": shape.num_edges,
                "relations": shape.num_relations,
                "folds": self._fold_fanout(),
            }
            batch_trace: Dict[str, float] = {}
            logits_rows, vector_rows = self._forward_batch(
                batch, len(chunk), batch_trace
            )
            for stage in ("plan_build", "infer"):
                if f"{stage}_s" in batch_trace:
                    self.stats.record_stage(stage, batch_trace[f"{stage}_s"])
            for j, i in enumerate(chunk):
                fingerprint = fingerprints[i]
                row = (logits_rows[j], vector_rows[j])
                for duplicate in seen_pending[fingerprint]:
                    rows[duplicate] = row
                    batch_sizes[duplicate] = len(chunk)
                    batch_infos[duplicate] = batch_info
                    traces[duplicate].update(batch_trace)
                if self.cache is not None:
                    self.cache.put(self._cache_key(fingerprint), row[0], row[1])

        total_latency = time.perf_counter() - start
        for row in rows:
            assert row is not None  # every index is a hit, pending or duplicate
        # Cache hits were answered by the lookup phase alone; only misses
        # paid for the forward passes.  Recording them apart keeps the
        # latency percentiles honest about the cache.
        latencies = [
            lookup_latency if hit else total_latency for hit in hit_flags
        ]
        combine_start = time.perf_counter()
        results = self._build_results(
            encoded, fingerprints, rows, hit_flags, latencies
        )
        combine_s = time.perf_counter() - combine_start
        self.stats.record_stage("combine", combine_s)
        for i, result in enumerate(results):
            trace = traces[i]
            trace["combine_s"] = combine_s
            trace["total_s"] = latencies[i]
            result.trace = trace
        for latency, hit in zip(latencies, hit_flags):
            self.stats.record_request(latency, hit)
        journal = self._journal
        if journal is not None:
            recorded_at = time.time()
            for i, result in enumerate(results):
                journal.record(
                    {
                        "ts": recorded_at,
                        "model": self._journal_model,
                        "artifact": self._journal_artifact,
                        "fingerprint": fingerprints[i],
                        "label": int(result.label),
                        "agreement": getattr(result, "agreement", None),
                        "cache_hit": bool(hit_flags[i]),
                        "batch_size": batch_sizes[i],
                        # Collated shape of this request's batch (None for
                        # cache hits, which ran no batch) — the cost-model
                        # calibrator's per-batch features.
                        "batch": batch_infos[i],
                        "latency_s": float(latencies[i]),
                        "stages": dict(traces[i]),
                        # Raw graph (serialized off the hot path by the
                        # writer thread) so recorded traffic can be replayed;
                        # pre-encoded requests carry no replayable graph.
                        "graph": getattr(encoded[i], "source_graph", None),
                    }
                )
        return results

    # ------------------------------------------------------ subclass hooks
    def _cache_key(self, fingerprint: str) -> str:
        """Cache key for one fingerprint (subclasses add a model digest)."""
        raise NotImplementedError

    def cache_namespace(self) -> str:
        """Prefix of every cache key this service writes.

        Several services can share one :class:`EmbeddingCache` (the hub
        deploys many models over one cache); this prefix is what keeps
        their entries apart, and what per-model telemetry counts via
        :meth:`EmbeddingCache.namespace_size`.
        """
        return self._cache_key("")

    def _fold_fanout(self) -> int:
        """How many fold models each execution plan fans out to."""
        return 1

    def _forward_batch(self, batch, size: int, trace: Optional[Dict[str, float]] = None):
        """Run the engine over one collated batch of ``size`` graphs.

        Implementations build one :class:`~repro.engine.ExecutionPlan` per
        batch and evaluate it statelessly — no locks: concurrent calls
        (overlapping micro-batches, parallel ``predict_many`` callers)
        are safe by construction.  Returns ``(logits_rows, vector_rows)``,
        each indexable by position within the batch; one row becomes one
        cache entry.  When ``trace`` is given, implementations fill the
        ``plan_build_s`` and ``infer_s`` spans into it.
        """
        raise NotImplementedError

    def _build_result(self, graph, fingerprint, row, cache_hit, latency_s):
        """Turn one cached-or-computed row into the service's result type."""
        raise NotImplementedError

    def _build_results(self, graphs, fingerprints, rows, hit_flags, latencies):
        """Turn one call's rows into results; default is the per-item loop.

        Subclasses may override to batch the row post-processing (the
        ensemble vectorises its probability combination across the whole
        call) — overrides must stay element-wise equivalent to
        :meth:`_build_result`.
        """
        return [
            self._build_result(graph, fingerprint, row, hit, latency)
            for graph, fingerprint, row, hit, latency in zip(
                graphs, fingerprints, rows, hit_flags, latencies
            )
        ]

    # ---------------------------------------------------------- async path
    def _ensure_batcher_locked(self) -> MicroBatcher:
        """Create the batcher if absent; caller must hold ``_batcher_lock``."""
        if self._batcher is None:
            factory = self._batcher_factory or MicroBatcher
            self._batcher = factory(
                self.predict_many,
                max_batch_size=self.config.max_batch_size,
                max_wait_s=self.config.max_wait_s,
                workers=getattr(self.config, "batcher_workers", 1),
                fanout=self._fold_fanout(),
                # Deadline-aware closing: the estimator reads the *current*
                # cost model at call time, so a hot-reloaded calibration
                # applies without rebuilding the batcher.  Inert until both
                # a model and a p95 target are bound.
                cost_estimator=self._estimate_batch_cost,
                latency_target_s=self._latency_target_s,
            )
        return self._batcher

    def start(self) -> "ServingFrontend":
        """Start the micro-batching thread behind :meth:`submit`."""
        with self._batcher_lock:
            self._auto_start = True
            self._ensure_batcher_locked().start()
        return self

    def submit(self, request: Request) -> Future:
        """Enqueue one request; resolves to one :meth:`predict_many` result.

        Requests submitted before the first :meth:`start` queue up and are
        answered — typically as one batch — once the service starts; once a
        service has been started, later submits (including after a
        :meth:`stop`) restart the batcher on demand.  Invalid requests are
        rejected here, before they can poison a whole micro-batch.
        """
        encoded = self._encode(request)
        # Admission first: a shed request must never occupy queue space.
        # The slot is held until the future resolves (the batcher ran or
        # failed it), so inflight == queued + running.
        admission = self._admission
        if admission is not None:
            try:
                admission.acquire(1)
            except OverCapacityError:
                self.stats.record_shed(1)
                raise
        try:
            # Enqueue under the lock so a concurrent stop() cannot close the
            # batcher between the lookup and the submit.
            with self._batcher_lock:
                batcher = self._ensure_batcher_locked()
                if self._auto_start:
                    batcher.start()
                future = batcher.submit(encoded)
        except BaseException:
            if admission is not None:
                admission.release(1)
            raise
        if admission is not None:
            future.add_done_callback(lambda _future: admission.release(1))
        return future

    def stop(self) -> None:
        """Drain queued requests and stop the micro-batching thread."""
        with self._batcher_lock:
            batcher, self._batcher = self._batcher, None
        if batcher is not None:
            batcher.close()

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -------------------------------------------------------------- export
    def snapshot(self) -> Dict[str, object]:
        """One JSON-friendly view of the service: stats + cache (if any).

        Subclasses extend this with their identity fields; the HTTP
        front-end renders it verbatim under ``GET /metrics``.
        """
        snapshot = self.stats.snapshot()
        if self.cache is not None:
            snapshot["cache"] = self.cache.stats()
        with self._batcher_lock:
            batcher = self._batcher
        snapshot["batcher"] = batcher.telemetry() if batcher is not None else None
        if self._admission is not None:
            snapshot["admission"] = self._admission.stats()
        return snapshot

    def describe(self) -> Dict[str, object]:
        """Identity of what is being served (rendered by ``GET /healthz``)."""
        raise NotImplementedError

    # ------------------------------------------------------------- warm-up
    def dump_cache(self, path: str) -> int:
        """Persist the embedding cache for a future warm start."""
        if self.cache is None:
            raise RuntimeError("cache is disabled; nothing to dump")
        return self.cache.dump(path)

    def warm_up(self, path: str) -> int:
        """Load a previously dumped cache; returns entries loaded.

        Entries whose keys don't belong to this service (e.g. an ensemble
        dump from a different model-version set) load but never match, so
        a mismatched warm-up file degrades to a cold start, not to wrong
        answers.
        """
        if self.cache is None:
            raise RuntimeError("cache is disabled; cannot warm up")
        return self.cache.load(path)

    @staticmethod
    def _best_effort_warm_up(cache: Optional[EmbeddingCache], path: Optional[str]) -> int:
        """Constructor-time warm-up: never fails the service.

        A missing, truncated or foreign warm-up file (e.g. a checkpoint torn
        by a crashed disk, or a path another tool wrote to) degrades to a
        cold start — a server must be able to boot past its own stale state.
        Explicit :meth:`warm_up` calls still raise, so operators probing a
        specific file get the real error.
        """
        if cache is None or not path or not os.path.isfile(path):
            return 0
        try:
            return cache.load(path)
        except Exception:
            return 0

    # ------------------------------------------------------------ internals
    def _encode(self, request: Request) -> EncodedGraph:
        if isinstance(request, EncodedGraph):
            return request
        if isinstance(request, ProgramGraph):
            encoded = self.encoder.encode(request)
            # Keep a handle on the source graph so the prediction journal
            # can record replayable traffic even on the async submit path
            # (which pre-encodes before enqueueing).  Requests submitted
            # already-encoded carry no replayable graph.
            encoded.source_graph = request
            return encoded
        raise TypeError(
            f"requests must be EncodedGraph or ProgramGraph, got {type(request).__name__}"
        )


class PredictionService(ServingFrontend):
    """Serves configuration predictions from a trained model."""

    def __init__(
        self,
        model: StaticRGCNModel,
        encoder: GraphEncoder,
        label_space: Optional[LabelSpace] = None,
        hybrid: Optional[HybridStaticDynamicClassifier] = None,
        config: Optional[ServiceConfig] = None,
        cache: Optional[EmbeddingCache] = None,
    ):
        self.config = config or ServiceConfig()
        self.model = model
        self.model.eval()
        self.encoder = encoder
        if label_space is not None and model.config.num_classes != label_space.num_labels:
            # Caught here, not at prediction time: a mismatched head would
            # otherwise emit labels with no configuration (or never emit the
            # tail of the label space) and every result would silently carry
            # ``configuration=None``.
            raise ValueError(
                f"model head emits {model.config.num_classes} labels but the "
                f"label space defines {label_space.num_labels} configurations; "
                f"the service cannot map predictions onto configurations"
            )
        self.label_space = label_space
        self.hybrid = hybrid
        self.stats = ServingStats(latency_window=self.config.latency_window)
        # An externally provided cache is shared verbatim (the hub backs
        # every deployment with one cache); keys carry the model digest, so
        # co-tenants can never replay each other's logits.
        if cache is not None:
            self.cache: Optional[EmbeddingCache] = cache
        elif self.config.enable_cache:
            self.cache = EmbeddingCache(self.config.cache_capacity)
        else:
            self.cache = None
        self._best_effort_warm_up(self.cache, self.config.warmup_path)
        # Cache keys carry a digest of the exact weights, so a warm-up file
        # dumped by a *different* model version never replays stale logits
        # — it simply never matches, degrading to a cold start.
        self.model_id = _model_digest(model)
        #: registry address of the served artefact; ``None`` when the service
        #: wraps a bare in-memory model (set by :meth:`from_artifact`).
        self.artifact_ref: Optional[ArtifactRef] = None
        # No forward lock: inference runs through the stateless engine path
        # (``StaticRGCNModel.infer``), which never touches the training-time
        # activation caches, so concurrent micro-batches simply overlap.
        super().__init__()

    # --------------------------------------------------------- constructors
    @classmethod
    def from_artifact(
        cls,
        artifact: LoadedArtifact,
        config: Optional[ServiceConfig] = None,
        cache: Optional[EmbeddingCache] = None,
    ) -> "PredictionService":
        """Build a service around a registry artefact."""
        service = cls(
            model=artifact.model,
            encoder=artifact.encoder,
            label_space=artifact.label_space,
            hybrid=artifact.hybrid,
            config=config,
            cache=cache,
        )
        service.artifact_ref = artifact.ref
        return service

    @classmethod
    def from_registry(
        cls,
        root: str,
        name: str,
        version: Optional[str] = None,
        config: Optional[ServiceConfig] = None,
        cache: Optional[EmbeddingCache] = None,
    ) -> "PredictionService":
        """Load (and integrity-check) an artefact, then serve it."""
        registry = ArtifactRegistry(root)
        # resolve() is the one canonical name/version check; load() then
        # works on a concrete, validated ref.
        ref = registry.resolve(name, version)
        artifact = registry.load(ref.name, ref.version)
        return cls.from_artifact(artifact, config=config, cache=cache)

    # -------------------------------------------------------------- export
    def describe(self) -> Dict[str, object]:
        return {
            "service": "single",
            "artifact": str(self.artifact_ref) if self.artifact_ref else None,
            "model_id": self.model_id,
            "num_labels": self.model.config.num_classes,
            "has_label_space": self.label_space is not None,
            "has_hybrid": self.hybrid is not None,
        }

    def snapshot(self) -> Dict[str, object]:
        snapshot = super().snapshot()
        snapshot["artifact"] = str(self.artifact_ref) if self.artifact_ref else None
        snapshot["model_id"] = self.model_id
        return snapshot

    # ------------------------------------------------------------ internals
    def _cache_key(self, fingerprint: str) -> str:
        return f"{self.model_id}:{fingerprint}"

    def _journal_identity(self) -> Optional[str]:
        return str(self.artifact_ref) if self.artifact_ref else self.model_id

    def _forward_batch(
        self, batch, size: int, trace: Optional[Dict[str, float]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        with span(trace, "plan_build_s"):
            plan = build_plan(batch)
        with span(trace, "infer_s"):
            logits, vectors = self.model.infer(plan)
        self.stats.record_batch(size)
        return logits, vectors

    def _build_result(
        self,
        graph: EncodedGraph,
        fingerprint: str,
        row: Tuple[np.ndarray, np.ndarray],
        cache_hit: bool,
        latency_s: float,
    ) -> PredictionResult:
        logits, vector = row
        label = int(np.argmax(logits))
        probabilities = softmax(logits[None, :], axis=1)[0]
        # Construction validated head size == label-space size, so every
        # emitted label maps onto a real configuration.
        configuration = (
            self.label_space.configuration_of(label)
            if self.label_space is not None
            else None
        )
        needs_profiling = (
            bool(self.hybrid.needs_dynamic(vector[None, :])[0])
            if self.hybrid is not None
            else None
        )
        return PredictionResult(
            name=graph.name,
            fingerprint=fingerprint,
            label=label,
            probabilities=probabilities,
            # Copy: on a cache hit ``vector`` aliases the shared cache entry,
            # and callers may mutate their result freely.
            graph_vector=np.array(vector, dtype=np.float64, copy=True),
            configuration=configuration,
            needs_profiling=needs_profiling,
            cache_hit=cache_hit,
            latency_s=latency_s,
        )
