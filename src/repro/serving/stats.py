"""Serving telemetry: request counters, batch-size histogram, latency
percentiles and queries-per-second.

One :class:`ServingStats` instance is owned by each
:class:`~repro.serving.service.PredictionService`; every front-end (sync,
batched, async) funnels through the same recorder, so a single
:meth:`snapshot` describes the whole service.  Latencies are kept in a
bounded window so a long-running service reports *recent* percentiles
rather than lifetime averages.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..concurrency import TrackedLock


def aggregate_snapshots(
    snapshots: Iterable[Dict[str, object]],
    latency_windows: Optional[Iterable[Sequence[float]]] = None,
) -> Dict[str, object]:
    """Hub-level roll-up of several :meth:`ServingStats.snapshot` dicts.

    A multi-model hub reports one stats section per deployment; this sums
    the countable parts across them (requests, hits, batches, engine
    counters) and recomputes the derived rates from the summed counts, so
    ``GET /metrics`` can show whole-process totals next to the per-model
    sections.

    Latency percentiles are **not mergeable from snapshots**: a p95 of
    per-model p95s is a statistic of nothing.  The roll-up is honest about
    it — the ``latency`` section carries ``p50_s``/``p95_s`` of ``None``
    with ``merged_from_raw_windows: false`` unless the caller passes the
    models' *raw* latency windows (``ServingStats.latency_values()``), in
    which case true pooled percentiles are computed over the concatenated
    samples (this is what :meth:`repro.serving.hub.ModelHub.snapshot`
    does).
    """
    models = 0
    total_requests = 0
    cache_hits = 0
    shed_requests = 0
    total_batches = 0
    batched_graphs = 0.0
    plans_built = 0
    stacked_forwards = 0
    fanned_folds = 0
    for snapshot in snapshots:
        models += 1
        total_requests += int(snapshot.get("total_requests", 0))
        cache_hits += int(snapshot.get("cache_hits", 0))
        shed_requests += int(snapshot.get("shed_requests", 0))
        batches = int(snapshot.get("total_batches", 0))
        total_batches += batches
        batched_graphs += float(snapshot.get("mean_batch_size", 0.0)) * batches
        engine = snapshot.get("engine") or {}
        plans_built += int(engine.get("plans_built", 0))
        stacked_forwards += int(engine.get("stacked_forwards", 0))
        fanned_folds += int(engine.get("fanned_folds", 0))
    if latency_windows is not None:
        pooled: List[float] = []
        for window in latency_windows:
            pooled.extend(float(value) for value in window)
        samples = np.asarray(pooled, dtype=np.float64) if pooled else None
        latency: Dict[str, object] = {
            "merged_from_raw_windows": True,
            "samples": len(pooled),
            "p50_s": float(np.percentile(samples, 50.0)) if samples is not None else None,
            "p95_s": float(np.percentile(samples, 95.0)) if samples is not None else None,
        }
    else:
        latency = {
            "merged_from_raw_windows": False,
            "samples": None,
            "p50_s": None,
            "p95_s": None,
            "note": (
                "percentiles of different models are not mergeable; pass the "
                "raw latency windows, or read them per model"
            ),
        }
    return {
        "models": models,
        "total_requests": total_requests,
        "cache_hits": cache_hits,
        "shed_requests": shed_requests,
        "cache_hit_rate": cache_hits / total_requests if total_requests else 0.0,
        "total_batches": total_batches,
        "mean_batch_size": batched_graphs / total_batches if total_batches else 0.0,
        "latency": latency,
        "engine": {
            "plans_built": plans_built,
            "stacked_forwards": stacked_forwards,
            "fanned_folds": fanned_folds,
            "mean_fold_fanout": fanned_folds / plans_built if plans_built else 0.0,
        },
    }


class ServingStats:
    """Aggregated counters for a prediction service."""

    def __init__(self, latency_window: int = 4096):
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self._lock = TrackedLock("stats.counters")
        self._started = time.monotonic()
        self._latency_window = latency_window
        self.total_requests = 0
        self.cache_hits = 0
        # Requests refused by admission control (not counted as served).
        self.shed_requests = 0
        self.total_batches = 0
        self.batched_graphs = 0
        self.batch_histogram: Dict[int, int] = {}
        # Engine telemetry: one ExecutionPlan per forward batch, fanned to
        # ``folds`` members (1 for a single-fold service); ``stacked``
        # forwards ran all folds in one StackedFoldModel sweep.
        self.plans_built = 0
        self.stacked_forwards = 0
        self.fanned_folds = 0
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        # Per-stage span windows (trace layer): stage name -> recent
        # durations, same bounded-window policy as the end-to-end latencies.
        self._stages: Dict[str, Deque[float]] = {}

    # ------------------------------------------------------------- recording
    def record_request(self, latency_s: float, cache_hit: bool) -> None:
        with self._lock:
            self.total_requests += 1
            if cache_hit:
                self.cache_hits += 1
            self._latencies.append(float(latency_s))

    def record_shed(self, count: int = 1) -> None:
        """``count`` requests refused by admission control (HTTP 429s).

        Shed requests never reach the model, so they appear in no latency
        window and no request total — this counter is their only trace."""
        with self._lock:
            self.shed_requests += int(count)

    def record_batch(self, size: int, folds: int = 1, stacked: bool = False) -> None:
        """One engine forward over ``size`` graphs (cache misses only).

        ``folds`` is the fold fan-out of the batch's execution plan — how
        many ensemble members the one plan served; ``stacked`` marks a
        single fold-stacked sweep (vs per-fold fallback loops).
        """
        with self._lock:
            self.total_batches += 1
            self.batched_graphs += size
            self.batch_histogram[size] = self.batch_histogram.get(size, 0) + 1
            self.plans_built += 1
            self.fanned_folds += folds
            if stacked:
                self.stacked_forwards += 1

    def record_stage(self, stage: str, duration_s: float) -> None:
        """One timed span of the predict path (``cache_lookup``, ``infer``,
        ...).

        Stages are recorded at the granularity they were measured — one
        sample per batch for the forward stages, one per call for lookup
        and combine, one per request for the queue wait — so each stage's
        percentiles describe real measured work, not synthetic per-request
        splits.
        """
        with self._lock:
            window = self._stages.get(stage)
            if window is None:
                window = self._stages[stage] = deque(maxlen=self._latency_window)
            window.append(float(duration_s))

    # ------------------------------------------------------------- derived
    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    @property
    def cache_hit_rate(self) -> float:
        with self._lock:
            total = self.total_requests
            hits = self.cache_hits
        return hits / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            batches = self.total_batches
            graphs = self.batched_graphs
        return graphs / batches if batches else 0.0

    def qps(self) -> float:
        """Lifetime queries per second."""
        elapsed = self.uptime_s
        with self._lock:
            total = self.total_requests
        return total / elapsed if elapsed > 0 else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile (seconds) over the recent window.

        Edge behaviour is part of the contract:

        * an **empty** window returns ``0.0`` — a service that has served
          nothing has no latency, and callers charting percentiles want a
          plottable number, not an exception;
        * a **one-sample** window returns that sample for *every*
          percentile (p0 == p50 == p100);
        * in between, percentiles interpolate linearly between adjacent
          order statistics (NumPy's default ``linear`` method), so a
          two-sample window's p50 is their midpoint.

        ``percentile`` must be within [0, 100].
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(
                f"percentile must be within [0, 100], got {percentile}"
            )
        with self._lock:
            if not self._latencies:
                return 0.0
            values = np.asarray(self._latencies, dtype=np.float64)
        return float(np.percentile(values, percentile))

    def latency_values(self) -> List[float]:
        """The raw recent-latency window (oldest first).

        This is the honest input for cross-model latency aggregation:
        :func:`aggregate_snapshots` can pool raw windows into true
        whole-process percentiles, which per-model percentiles alone can
        never reconstruct.
        """
        with self._lock:
            return list(self._latencies)

    # -------------------------------------------------------------- export
    def snapshot(self) -> Dict[str, object]:
        """One JSON-friendly view of every metric.

        Every counter is copied under a single lock acquisition, so a
        snapshot taken mid-burst is internally consistent — ``cache_hits``
        can never exceed ``total_requests``, and derived rates are computed
        from the same reads they describe (the property accessors each lock
        separately, which is fine for one value but torn across several).
        """
        with self._lock:
            total_requests = self.total_requests
            cache_hits = self.cache_hits
            shed_requests = self.shed_requests
            total_batches = self.total_batches
            batched_graphs = self.batched_graphs
            plans_built = self.plans_built
            stacked_forwards = self.stacked_forwards
            fanned_folds = self.fanned_folds
            histogram = dict(sorted(self.batch_histogram.items()))
            latencies = (
                np.asarray(self._latencies, dtype=np.float64)
                if self._latencies
                else None
            )
            stage_arrays = {
                stage: np.asarray(window, dtype=np.float64)
                for stage, window in sorted(self._stages.items())
                if window
            }
        elapsed = self.uptime_s
        return {
            "uptime_s": elapsed,
            "total_requests": total_requests,
            "cache_hits": cache_hits,
            "shed_requests": shed_requests,
            "cache_hit_rate": cache_hits / total_requests if total_requests else 0.0,
            "total_batches": total_batches,
            "mean_batch_size": batched_graphs / total_batches if total_batches else 0.0,
            "batch_histogram": histogram,
            "engine": {
                "plans_built": plans_built,
                "stacked_forwards": stacked_forwards,
                "fanned_folds": fanned_folds,
                "mean_fold_fanout": (
                    fanned_folds / plans_built if plans_built else 0.0
                ),
            },
            "qps": total_requests / elapsed if elapsed > 0 else 0.0,
            "latency_p50_s": (
                float(np.percentile(latencies, 50.0)) if latencies is not None else 0.0
            ),
            "latency_p95_s": (
                float(np.percentile(latencies, 95.0)) if latencies is not None else 0.0
            ),
            # Per-stage span percentiles from the trace layer; a stage is
            # present once it has been measured at least once.
            "stages": {
                stage: {
                    "count": int(values.size),
                    "p50_s": float(np.percentile(values, 50.0)),
                    "p95_s": float(np.percentile(values, 95.0)),
                }
                for stage, values in stage_arrays.items()
            },
        }


# ------------------------------------------------------- prometheus export


def _prometheus_escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def render_prometheus(metrics: Dict[str, object]) -> str:
    """Text exposition (Prometheus 0.0.4 format) of a ``/metrics`` payload.

    Stdlib-only flattening of the hub metrics JSON: per-model counters and
    latency/stage percentiles become labelled series, the shared
    cache/pool/checkpoint/journal sections become unlabelled gauges.  Only
    numeric leaves are exported — Prometheus has no string samples.
    """
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def emit(name: str, value: object, labels: Optional[Dict[str, str]] = None,
             kind: str = "gauge") -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        if name not in typed:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        if labels:
            rendered = ",".join(
                f'{key}="{_prometheus_escape(label)}"'
                for key, label in sorted(labels.items())
            )
            lines.append(f"{name}{{{rendered}}} {float(value):g}")
        else:
            lines.append(f"{name} {float(value):g}")

    def emit_stats(snapshot: Dict[str, object], labels: Dict[str, str]) -> None:
        emit("repro_requests_total", snapshot.get("total_requests"), labels, "counter")
        emit("repro_cache_hits_total", snapshot.get("cache_hits"), labels, "counter")
        emit("repro_shed_total", snapshot.get("shed_requests"), labels, "counter")
        emit("repro_batches_total", snapshot.get("total_batches"), labels, "counter")
        emit("repro_mean_batch_size", snapshot.get("mean_batch_size"), labels)
        emit("repro_qps", snapshot.get("qps"), labels)
        for percentile in ("50", "95"):
            emit(
                "repro_latency_seconds",
                snapshot.get(f"latency_p{percentile}_s"),
                {**labels, "quantile": f"0.{percentile}"},
            )
        for stage, values in (snapshot.get("stages") or {}).items():
            if not isinstance(values, dict):
                continue
            for percentile in ("50", "95"):
                emit(
                    "repro_stage_seconds",
                    values.get(f"p{percentile}_s"),
                    {**labels, "stage": stage, "quantile": f"0.{percentile}"},
                )
        engine = snapshot.get("engine") or {}
        if isinstance(engine, dict):
            emit("repro_plans_built_total", engine.get("plans_built"), labels, "counter")
            emit(
                "repro_stacked_forwards_total",
                engine.get("stacked_forwards"),
                labels,
                "counter",
            )

    hub = metrics.get("hub") or {}
    for model, snapshot in sorted((hub.get("models") or {}).items()):
        if isinstance(snapshot, dict):
            emit_stats(snapshot, {"model": model})
    aggregate = hub.get("aggregate") or {}
    if isinstance(aggregate, dict):
        emit("repro_models", aggregate.get("models"))
        emit_stats(aggregate, {"model": "_aggregate"})
        latency = aggregate.get("latency") or {}
        if isinstance(latency, dict):
            for percentile in ("50", "95"):
                emit(
                    "repro_latency_seconds",
                    latency.get(f"p{percentile}_s"),
                    {"model": "_aggregate", "quantile": f"0.{percentile}"},
                )
    for section in ("cache", "pool", "journal"):
        data = hub.get(section)
        if isinstance(data, dict):
            for key, value in sorted(data.items()):
                emit(f"repro_{section}_{key}", value)
    checkpoint = metrics.get("checkpoint") or hub.get("checkpoint")
    if isinstance(checkpoint, dict):
        for key in ("checkpoints", "skipped", "failures", "last_entries"):
            emit(f"repro_checkpoint_{key}", checkpoint.get(key))
    return "\n".join(lines) + "\n"
