"""Serving telemetry: request counters, batch-size histogram, latency
percentiles and queries-per-second.

One :class:`ServingStats` instance is owned by each
:class:`~repro.serving.service.PredictionService`; every front-end (sync,
batched, async) funnels through the same recorder, so a single
:meth:`snapshot` describes the whole service.  Latencies are kept in a
bounded window so a long-running service reports *recent* percentiles
rather than lifetime averages.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable

import numpy as np


def aggregate_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Hub-level roll-up of several :meth:`ServingStats.snapshot` dicts.

    A multi-model hub reports one stats section per deployment; this sums
    the countable parts across them (requests, hits, batches, engine
    counters) and recomputes the derived rates from the summed counts, so
    ``GET /metrics`` can show whole-process totals next to the per-model
    sections.  Latency percentiles are deliberately absent: percentiles of
    different models do not average meaningfully — read them per model.
    """
    models = 0
    total_requests = 0
    cache_hits = 0
    total_batches = 0
    batched_graphs = 0.0
    plans_built = 0
    stacked_forwards = 0
    fanned_folds = 0
    for snapshot in snapshots:
        models += 1
        total_requests += int(snapshot.get("total_requests", 0))
        cache_hits += int(snapshot.get("cache_hits", 0))
        batches = int(snapshot.get("total_batches", 0))
        total_batches += batches
        batched_graphs += float(snapshot.get("mean_batch_size", 0.0)) * batches
        engine = snapshot.get("engine") or {}
        plans_built += int(engine.get("plans_built", 0))
        stacked_forwards += int(engine.get("stacked_forwards", 0))
        fanned_folds += int(engine.get("fanned_folds", 0))
    return {
        "models": models,
        "total_requests": total_requests,
        "cache_hits": cache_hits,
        "cache_hit_rate": cache_hits / total_requests if total_requests else 0.0,
        "total_batches": total_batches,
        "mean_batch_size": batched_graphs / total_batches if total_batches else 0.0,
        "engine": {
            "plans_built": plans_built,
            "stacked_forwards": stacked_forwards,
            "fanned_folds": fanned_folds,
            "mean_fold_fanout": fanned_folds / plans_built if plans_built else 0.0,
        },
    }


class ServingStats:
    """Aggregated counters for a prediction service."""

    def __init__(self, latency_window: int = 4096):
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.total_requests = 0
        self.cache_hits = 0
        self.total_batches = 0
        self.batched_graphs = 0
        self.batch_histogram: Dict[int, int] = {}
        # Engine telemetry: one ExecutionPlan per forward batch, fanned to
        # ``folds`` members (1 for a single-fold service); ``stacked``
        # forwards ran all folds in one StackedFoldModel sweep.
        self.plans_built = 0
        self.stacked_forwards = 0
        self.fanned_folds = 0
        self._latencies: Deque[float] = deque(maxlen=latency_window)

    # ------------------------------------------------------------- recording
    def record_request(self, latency_s: float, cache_hit: bool) -> None:
        with self._lock:
            self.total_requests += 1
            if cache_hit:
                self.cache_hits += 1
            self._latencies.append(float(latency_s))

    def record_batch(self, size: int, folds: int = 1, stacked: bool = False) -> None:
        """One engine forward over ``size`` graphs (cache misses only).

        ``folds`` is the fold fan-out of the batch's execution plan — how
        many ensemble members the one plan served; ``stacked`` marks a
        single fold-stacked sweep (vs per-fold fallback loops).
        """
        with self._lock:
            self.total_batches += 1
            self.batched_graphs += size
            self.batch_histogram[size] = self.batch_histogram.get(size, 0) + 1
            self.plans_built += 1
            self.fanned_folds += folds
            if stacked:
                self.stacked_forwards += 1

    # ------------------------------------------------------------- derived
    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    @property
    def cache_hit_rate(self) -> float:
        with self._lock:
            total = self.total_requests
            hits = self.cache_hits
        return hits / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            batches = self.total_batches
            graphs = self.batched_graphs
        return graphs / batches if batches else 0.0

    def qps(self) -> float:
        """Lifetime queries per second."""
        elapsed = self.uptime_s
        with self._lock:
            total = self.total_requests
        return total / elapsed if elapsed > 0 else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile (seconds) over the recent window."""
        with self._lock:
            if not self._latencies:
                return 0.0
            values = np.asarray(self._latencies, dtype=np.float64)
        return float(np.percentile(values, percentile))

    # -------------------------------------------------------------- export
    def snapshot(self) -> Dict[str, object]:
        """One JSON-friendly view of every metric.

        Every counter is copied under a single lock acquisition, so a
        snapshot taken mid-burst is internally consistent — ``cache_hits``
        can never exceed ``total_requests``, and derived rates are computed
        from the same reads they describe (the property accessors each lock
        separately, which is fine for one value but torn across several).
        """
        with self._lock:
            total_requests = self.total_requests
            cache_hits = self.cache_hits
            total_batches = self.total_batches
            batched_graphs = self.batched_graphs
            plans_built = self.plans_built
            stacked_forwards = self.stacked_forwards
            fanned_folds = self.fanned_folds
            histogram = dict(sorted(self.batch_histogram.items()))
            latencies = (
                np.asarray(self._latencies, dtype=np.float64)
                if self._latencies
                else None
            )
        elapsed = self.uptime_s
        return {
            "uptime_s": elapsed,
            "total_requests": total_requests,
            "cache_hits": cache_hits,
            "cache_hit_rate": cache_hits / total_requests if total_requests else 0.0,
            "total_batches": total_batches,
            "mean_batch_size": batched_graphs / total_batches if total_batches else 0.0,
            "batch_histogram": histogram,
            "engine": {
                "plans_built": plans_built,
                "stacked_forwards": stacked_forwards,
                "fanned_folds": fanned_folds,
                "mean_fold_fanout": (
                    fanned_folds / plans_built if plans_built else 0.0
                ),
            },
            "qps": total_requests / elapsed if elapsed > 0 else 0.0,
            "latency_p50_s": (
                float(np.percentile(latencies, 50.0)) if latencies is not None else 0.0
            ),
            "latency_p95_s": (
                float(np.percentile(latencies, 95.0)) if latencies is not None else 0.0
            ),
        }
