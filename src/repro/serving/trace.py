"""Per-request tracing: lightweight span timers through the serving stack.

A request answered by the hub crosses several layers — HTTP decode, the
embedding-cache lookup, the micro-batch queue, execution-plan construction,
the RGCN forward pass, probability combination — and a slow request gives
no hint which of them it spent its time in.  This module is the thread
that ties those layers together:

* every :class:`~repro.serving.service.ServingFrontend` fills one **trace
  dict** per request (``{"cache_lookup_s": ..., "infer_s": ..., ...}``)
  and attaches it to the result (``result.trace``);
* the micro-batchers (:mod:`repro.serving.batcher`) contribute the
  **queue-wait span** via a :class:`contextvars.ContextVar` — the worker
  thread publishes each item's time-in-queue immediately before invoking
  the runner, and ``predict_many`` (the runner) consumes it on the same
  thread, so no signature anywhere has to change;
* the HTTP layer adds the **decode span** (body parse + graph decode) and
  returns the whole trace in the response when the client opts in
  (``{"graph": ..., "trace": true}``);
* every span is also folded into :class:`~repro.serving.stats.ServingStats`
  (``record_stage``), so ``GET /metrics`` reports per-stage p50/p95 next
  to the end-to-end latency percentiles.

Spans are plain ``float`` seconds in a plain dict — no clocks beyond
``time.perf_counter``, no IDs, no sampling: cheap enough to be always on.
Batch-level spans (plan build, infer, combine) are shared by every request
of the batch; the trace reports what the request's *batch* paid, which is
what an operator debugging a slow endpoint actually wants to know.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, List, Optional, Sequence, Tuple

#: canonical span order, decode first — purely documentary (traces are
#: dicts; a span is present only when its layer ran for that request).
SPAN_ORDER = (
    "decode_s",
    "cache_lookup_s",
    "queue_wait_s",
    "plan_build_s",
    "infer_s",
    "combine_s",
    "total_s",
)

#: queue waits of the batch currently being run, published by the batcher
#: worker immediately before it calls the runner on the same thread.
_queue_waits: ContextVar[Optional[Tuple[float, ...]]] = ContextVar(
    "repro_serving_queue_waits", default=None
)


def publish_queue_waits(waits: Sequence[float]):
    """Publish per-item queue waits for the runner call about to happen.

    Called by the batcher worker thread; returns the reset token.  The
    runner (``predict_many``) picks the values up via
    :func:`consume_queue_waits` on the same thread.
    """
    return _queue_waits.set(tuple(float(wait) for wait in waits))


def reset_queue_waits(token) -> None:
    _queue_waits.reset(token)


def consume_queue_waits(expected: int) -> Optional[List[float]]:
    """The queue waits published for this exact call, or ``None``.

    ``None`` when the call did not come through a batcher (direct
    ``predict_many``), or when the published batch does not line up with
    the requests of this call (defensive: a runner that re-batches).
    Consuming clears the value, so a nested ``predict_many`` on the same
    thread never double-counts the wait.
    """
    waits = _queue_waits.get()
    if waits is None or len(waits) != expected:
        return None
    _queue_waits.set(None)
    return list(waits)


@contextmanager
def span(trace: Optional[Dict[str, float]], name: str):
    """Time a block into ``trace[name]`` (no-op when ``trace`` is None)."""
    if trace is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        trace[name] = trace.get(name, 0.0) + (time.perf_counter() - start)
