"""Synthetic OpenMP-region benchmark suite (NAS / Rodinia / LULESH / CLOMP analogues)."""

from .families import clomp_regions, lulesh_regions, nas_regions, rodinia_regions
from .inputs import INPUT_SIZES, SIZE_1, SIZE_2, InputScaling, profile_for_size, scaling_for
from .irgen import KernelIRGenerator, generate_region_module
from .profiles import derive_profile
from .spec import ALL_PATTERNS, KernelSpec, Pattern
from .suite import Region, all_specs, build_suite, region_by_name, suite_summary

__all__ = [
    "clomp_regions",
    "lulesh_regions",
    "nas_regions",
    "rodinia_regions",
    "INPUT_SIZES",
    "SIZE_1",
    "SIZE_2",
    "InputScaling",
    "profile_for_size",
    "scaling_for",
    "KernelIRGenerator",
    "generate_region_module",
    "derive_profile",
    "ALL_PATTERNS",
    "KernelSpec",
    "Pattern",
    "Region",
    "all_specs",
    "build_suite",
    "region_by_name",
    "suite_summary",
]
