"""Benchmark families of the region suite (NAS, Rodinia, LULESH, CLOMP)."""

from .clomp import clomp_regions
from .lulesh import lulesh_regions
from .nas import nas_regions
from .rodinia import rodinia_regions

__all__ = ["clomp_regions", "lulesh_regions", "nas_regions", "rodinia_regions"]
