"""CLOMP region analogues.

CLOMP (Characterization of Linux OpenMP) measures OpenMP overheads with many
small parallel loops over linked zones.  Its regions are tiny: per-call work
is dominated by fork/join, scheduling and barrier costs, so they scale
poorly and the optimal configurations use a fraction of the machine — these
regions are where the search space yields its largest speedups over the
"all cores, everything on" default.
"""

from __future__ import annotations

from typing import List

from ..spec import KernelSpec, Pattern

#: (source line, iterations, inner trip count, scalability limit, barriers)
_CLOMP_VARIANTS = (
    ("805", 3.0e4, 6, 8, 30.0),
    ("988", 5.0e4, 8, 8, 40.0),
    ("1007", 2.0e4, 4, 4, 30.0),
    ("1017", 4.0e4, 6, 8, 35.0),
    ("1036", 6.0e4, 10, 12, 45.0),
    ("1046", 2.5e4, 4, 4, 25.0),
    ("1056", 8.0e4, 12, 16, 50.0),
    ("1075", 5.5e4, 8, 8, 40.0),
    ("1085", 3.5e4, 6, 8, 30.0),
    ("1095", 4.5e4, 8, 8, 35.0),
    ("1105", 7.0e4, 10, 12, 45.0),
)


def clomp_regions() -> List[KernelSpec]:
    regions: List[KernelSpec] = []
    for line, iterations, inner_trip, scalability, barriers in _CLOMP_VARIANTS:
        regions.append(
            KernelSpec(
                name=f"clomp {line}",
                family="clomp",
                pattern=Pattern.INNER_LOOP,
                num_arrays=2,
                flop_chain=2,
                inner_trip=inner_trip,
                iterations=iterations,
                calls=40,
                footprint_mb=2.0,
                working_set_kb=64.0,
                shared_fraction=0.25,
                serial_fraction=0.06,
                load_imbalance=1.1,
                barriers_per_call=barriers,
                scalability_limit=scalability,
                init_by_master=True,
            )
        )
    return regions
