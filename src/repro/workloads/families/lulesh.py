"""LULESH 2.0 region analogues.

LULESH exposes many OpenMP regions of very different character: large
bandwidth-bound element sweeps, gather-style node accumulations, small
fix-up loops that barely scale, and a couple of compute-dense EOS kernels.
Region names carry the source line of the parallel region as in Figure 3.
"""

from __future__ import annotations

from typing import List

from ..spec import KernelSpec, Pattern


def lulesh_regions() -> List[KernelSpec]:
    regions: List[KernelSpec] = []

    regions.append(
        KernelSpec(
            name="lulesh 549",
            family="lulesh",
            pattern=Pattern.STREAMING,
            num_arrays=4,
            flop_chain=5,
            iterations=4.0e5,
            footprint_mb=60.0,
            working_set_kb=2_500.0,
            shared_fraction=0.1,
            scalability_limit=16,
            barriers_per_call=2.0,
        )
    )
    regions.append(
        KernelSpec(
            name="lulesh 810",
            family="lulesh",
            pattern=Pattern.GATHER,
            num_arrays=4,
            flop_chain=8,
            uses_atomics=True,
            iterations=1.8e6,
            footprint_mb=380.0,
            working_set_kb=30_000.0,
            shared_fraction=0.45,
            load_imbalance=1.15,
        )
    )
    regions.append(
        KernelSpec(
            name="lulesh 1037",
            family="lulesh",
            pattern=Pattern.STREAMING,
            num_arrays=5,
            flop_chain=12,
            iterations=2.4e6,
            footprint_mb=450.0,
            working_set_kb=40_000.0,
            shared_fraction=0.1,
        )
    )
    regions.append(
        KernelSpec(
            name="lulesh 1538",
            family="lulesh",
            pattern=Pattern.STENCIL,
            num_arrays=4,
            flop_chain=9,
            uses_sqrt=True,
            iterations=2.0e6,
            footprint_mb=330.0,
            working_set_kb=26_000.0,
            shared_fraction=0.15,
            phase_variability=0.2,
        )
    )
    regions.append(
        KernelSpec(
            name="lulesh 2051",
            family="lulesh",
            pattern=Pattern.COMPUTE,
            num_arrays=4,
            flop_chain=18,
            uses_sqrt=True,
            uses_exp=True,
            iterations=1.5e6,
            footprint_mb=90.0,
            working_set_kb=3_000.0,
            shared_fraction=0.05,
        )
    )
    regions.append(
        KernelSpec(
            name="lulesh 2058",
            family="lulesh",
            pattern=Pattern.BRANCHY,
            num_arrays=3,
            flop_chain=4,
            iterations=9.0e5,
            footprint_mb=120.0,
            working_set_kb=8_000.0,
            shared_fraction=0.2,
            branch_regularity=0.6,
            load_imbalance=1.25,
        )
    )
    regions.append(
        KernelSpec(
            name="lulesh 2104",
            family="lulesh",
            pattern=Pattern.STREAMING,
            num_arrays=3,
            flop_chain=3,
            iterations=6.0e5,
            footprint_mb=70.0,
            working_set_kb=2_000.0,
            shared_fraction=0.1,
            scalability_limit=24,
            barriers_per_call=3.0,
        )
    )
    regions.append(
        KernelSpec(
            name="lulesh 2269",
            family="lulesh",
            pattern=Pattern.TRIAD,
            num_arrays=3,
            flop_chain=2,
            iterations=3.2e6,
            footprint_mb=540.0,
            working_set_kb=46_000.0,
            shared_fraction=0.08,
        )
    )
    return regions
