"""NAS Parallel Benchmarks (C/OpenMP version) region analogues.

Region names follow Figure 3 of the paper (benchmark plus source line of the
OpenMP parallel region).  Each spec captures the dominant behaviour of the
corresponding NAS kernel: the BT/SP/LU line solvers are blocked sweeps with
healthy arithmetic intensity, CG is a sparse matrix-vector product (gather),
FT's steps are strided FFT passes, IS is a counting sort with shared updates
and MG's smoother/residual are memory-bound stencils.
"""

from __future__ import annotations

from typing import List

from ..spec import KernelSpec, Pattern


def nas_regions() -> List[KernelSpec]:
    regions: List[KernelSpec] = []

    # ----------------------------------------------------------------- BT
    for axis, line_hint in (("xsolve", 0), ("ysolve", 1), ("zsolve", 2)):
        regions.append(
            KernelSpec(
                name=f"bt {axis}",
                family="nas",
                pattern=Pattern.BLOCKED,
                num_arrays=4,
                flop_chain=10,
                stride=1 if axis == "xsolve" else 4,
                iterations=1.8e6,
                footprint_mb=190.0,
                working_set_kb=6_000.0,
                shared_fraction=0.08,
                load_imbalance=1.04,
                serial_fraction=0.01,
                dependency_chain=0.35 + 0.05 * line_hint,
            )
        )
    regions.append(
        KernelSpec(
            name="bt rhs",
            family="nas",
            pattern=Pattern.STENCIL2D,
            num_arrays=4,
            flop_chain=12,
            iterations=2.2e6,
            footprint_mb=210.0,
            working_set_kb=8_000.0,
            shared_fraction=0.1,
            serial_fraction=0.01,
        )
    )

    # ----------------------------------------------------------------- CG
    regions.append(
        KernelSpec(
            name="cg 405",
            family="nas",
            pattern=Pattern.GATHER,
            num_arrays=3,
            flop_chain=2,
            iterations=3.0e6,
            footprint_mb=380.0,
            working_set_kb=48_000.0,
            shared_fraction=0.45,
            load_imbalance=1.12,
            serial_fraction=0.02,
            uses_atomics=False,
        )
    )
    regions.append(
        KernelSpec(
            name="cg 551",
            family="nas",
            pattern=Pattern.REDUCTION,
            num_arrays=2,
            flop_chain=2,
            uses_atomics=True,
            iterations=1.2e6,
            footprint_mb=90.0,
            working_set_kb=12_000.0,
            shared_fraction=0.35,
            barriers_per_call=2.0,
        )
    )

    # ----------------------------------------------------------------- FT
    for step, stride, iters in (("step 1", 1, 2.6e6), ("step 2", 8, 2.6e6), ("step 3", 64, 2.6e6)):
        regions.append(
            KernelSpec(
                name=f"ft {step}",
                family="nas",
                pattern=Pattern.BLOCKED,
                num_arrays=3,
                flop_chain=6,
                stride=stride,
                iterations=iters,
                footprint_mb=520.0,
                working_set_kb=26_000.0,
                shared_fraction=0.15,
                serial_fraction=0.015,
            )
        )

    # ----------------------------------------------------------------- IS
    regions.append(
        KernelSpec(
            name="is rank",
            family="nas",
            pattern=Pattern.SCATTER,
            num_arrays=2,
            flop_chain=1,
            uses_atomics=True,
            iterations=4.0e6,
            footprint_mb=300.0,
            working_set_kb=40_000.0,
            shared_fraction=0.55,
            load_imbalance=1.15,
            phase_variability=0.35,
            branch_regularity=0.6,
        )
    )
    regions.append(
        KernelSpec(
            name="is main",
            family="nas",
            pattern=Pattern.STREAMING,
            num_arrays=3,
            flop_chain=1,
            iterations=2.5e6,
            footprint_mb=280.0,
            working_set_kb=35_000.0,
            shared_fraction=0.2,
            serial_fraction=0.05,
        )
    )

    # ----------------------------------------------------------------- LU
    regions.append(
        KernelSpec(
            name="lu rhs",
            family="nas",
            pattern=Pattern.STENCIL2D,
            num_arrays=4,
            flop_chain=9,
            iterations=2.0e6,
            footprint_mb=170.0,
            working_set_kb=7_000.0,
            shared_fraction=0.1,
        )
    )
    regions.append(
        KernelSpec(
            name="lu ssor",
            family="nas",
            pattern=Pattern.STENCIL,
            num_arrays=3,
            flop_chain=8,
            iterations=1.6e6,
            footprint_mb=150.0,
            working_set_kb=6_000.0,
            shared_fraction=0.12,
            dependency_chain=0.55,
            load_imbalance=1.2,
            barriers_per_call=4.0,
        )
    )

    # ----------------------------------------------------------------- MG
    regions.append(
        KernelSpec(
            name="mg psinv",
            family="nas",
            pattern=Pattern.STENCIL2D,
            num_arrays=3,
            flop_chain=7,
            iterations=3.2e6,
            footprint_mb=620.0,
            working_set_kb=52_000.0,
            shared_fraction=0.18,
            phase_variability=0.25,
        )
    )
    regions.append(
        KernelSpec(
            name="mg residual",
            family="nas",
            pattern=Pattern.STENCIL2D,
            num_arrays=3,
            flop_chain=6,
            iterations=3.4e6,
            footprint_mb=640.0,
            working_set_kb=54_000.0,
            shared_fraction=0.2,
            phase_variability=0.45,
            load_imbalance=1.1,
        )
    )

    # ----------------------------------------------------------------- SP
    for axis in ("xsolve", "ysolve", "zsolve"):
        regions.append(
            KernelSpec(
                name=f"sp {axis}",
                family="nas",
                pattern=Pattern.BLOCKED,
                num_arrays=4,
                flop_chain=8,
                stride=1 if axis == "xsolve" else 4,
                iterations=2.4e6,
                footprint_mb=240.0,
                working_set_kb=9_000.0,
                shared_fraction=0.08,
                serial_fraction=0.01,
            )
        )
    regions.append(
        KernelSpec(
            name="sp rhs",
            family="nas",
            pattern=Pattern.STENCIL2D,
            num_arrays=4,
            flop_chain=11,
            iterations=2.6e6,
            footprint_mb=260.0,
            working_set_kb=10_000.0,
            shared_fraction=0.1,
        )
    )
    return regions
