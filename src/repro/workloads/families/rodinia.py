"""Rodinia and miscellaneous proxy-app region analogues.

Covers the Rodinia kernels the paper evaluates (bfs, b+tree, cfd, hotspot,
hotspot3D, kmeans, lud, nn, needle, pathfinder, streamcluster) plus the
stand-alone proxy applications used alongside them (blackscholes, HACCmk,
quicksilver).  Names again follow Figure 3.
"""

from __future__ import annotations

from typing import List

from ..spec import KernelSpec, Pattern


def rodinia_regions() -> List[KernelSpec]:
    regions: List[KernelSpec] = []

    # ---------------------------------------------------------------- BFS
    regions.append(
        KernelSpec(
            name="bfs 135",
            family="rodinia",
            pattern=Pattern.GATHER,
            num_arrays=3,
            flop_chain=1,
            branch_in_body=True,
            iterations=2.2e6,
            footprint_mb=340.0,
            working_set_kb=45_000.0,
            shared_fraction=0.5,
            load_imbalance=1.35,
            branch_regularity=0.55,
            phase_variability=0.2,
        )
    )
    regions.append(
        KernelSpec(
            name="bfs 157",
            family="rodinia",
            pattern=Pattern.BRANCHY,
            num_arrays=3,
            flop_chain=1,
            iterations=1.8e6,
            footprint_mb=320.0,
            working_set_kb=42_000.0,
            shared_fraction=0.45,
            load_imbalance=1.4,
            branch_regularity=0.5,
        )
    )

    # ------------------------------------------------------------- B+tree
    for line, depth in (("86", 0.9), ("96", 0.95)):
        regions.append(
            KernelSpec(
                name=f"b+tree {line}",
                family="rodinia",
                pattern=Pattern.POINTER_CHASE,
                num_arrays=2,
                flop_chain=1,
                iterations=1.2e6,
                footprint_mb=260.0,
                working_set_kb=60_000.0,
                shared_fraction=0.3,
                dependency_chain=depth,
                branch_regularity=0.6,
            )
        )

    # ----------------------------------------------------------------- CFD
    regions.append(
        KernelSpec(
            name="cfd 211",
            family="rodinia",
            pattern=Pattern.GATHER,
            num_arrays=4,
            flop_chain=8,
            uses_sqrt=True,
            iterations=2.0e6,
            footprint_mb=410.0,
            working_set_kb=30_000.0,
            shared_fraction=0.35,
            load_imbalance=1.1,
        )
    )
    regions.append(
        KernelSpec(
            name="cfd 347",
            family="rodinia",
            pattern=Pattern.GATHER,
            num_arrays=4,
            flop_chain=10,
            uses_sqrt=True,
            iterations=2.4e6,
            footprint_mb=430.0,
            working_set_kb=32_000.0,
            shared_fraction=0.4,
            phase_variability=0.3,
            load_imbalance=1.15,
        )
    )

    # ------------------------------------------------------------ hotspot
    regions.append(
        KernelSpec(
            name="Hotspot",
            family="rodinia",
            pattern=Pattern.STENCIL2D,
            num_arrays=3,
            flop_chain=6,
            iterations=2.2e6,
            footprint_mb=120.0,
            working_set_kb=9_000.0,
            shared_fraction=0.12,
            barriers_per_call=3.0,
        )
    )
    regions.append(
        KernelSpec(
            name="hotspot3D",
            family="rodinia",
            pattern=Pattern.STENCIL2D,
            num_arrays=3,
            flop_chain=8,
            iterations=2.8e6,
            footprint_mb=520.0,
            working_set_kb=48_000.0,
            shared_fraction=0.15,
        )
    )

    # ------------------------------------------------------------- kmeans
    regions.append(
        KernelSpec(
            name="kmeans",
            family="rodinia",
            pattern=Pattern.REDUCTION,
            num_arrays=3,
            flop_chain=6,
            uses_atomics=True,
            iterations=2.6e6,
            footprint_mb=200.0,
            working_set_kb=800.0,
            shared_fraction=0.65,
            barriers_per_call=4.0,
            phase_variability=0.45,
            load_imbalance=1.1,
        )
    )

    # ---------------------------------------------------------------- LUD
    regions.append(
        KernelSpec(
            name="lud",
            family="rodinia",
            pattern=Pattern.BLOCKED,
            num_arrays=2,
            flop_chain=9,
            stride=16,
            iterations=1.4e6,
            footprint_mb=64.0,
            working_set_kb=2_000.0,
            shared_fraction=0.2,
            dependency_chain=0.5,
            load_imbalance=1.3,
            barriers_per_call=8.0,
        )
    )

    # ----------------------------------------------------------------- NN
    regions.append(
        KernelSpec(
            name="nn",
            family="rodinia",
            pattern=Pattern.STREAMING,
            num_arrays=2,
            flop_chain=3,
            uses_sqrt=True,
            iterations=9.0e5,
            footprint_mb=40.0,
            working_set_kb=600.0,
            shared_fraction=0.1,
            scalability_limit=16,
            phase_variability=0.25,
            serial_fraction=0.06,
        )
    )

    # -------------------------------------------------------------- needle
    regions.append(
        KernelSpec(
            name="needle 116",
            family="rodinia",
            pattern=Pattern.STENCIL,
            num_arrays=3,
            flop_chain=3,
            iterations=1.1e6,
            footprint_mb=140.0,
            working_set_kb=5_000.0,
            shared_fraction=0.3,
            dependency_chain=0.6,
            load_imbalance=1.5,
            barriers_per_call=12.0,
            phase_variability=0.4,
        )
    )
    regions.append(
        KernelSpec(
            name="needle 176",
            family="rodinia",
            pattern=Pattern.STENCIL,
            num_arrays=3,
            flop_chain=3,
            iterations=1.0e6,
            footprint_mb=130.0,
            working_set_kb=4_800.0,
            shared_fraction=0.3,
            dependency_chain=0.6,
            load_imbalance=1.45,
            barriers_per_call=12.0,
        )
    )

    # ----------------------------------------------------------- pathfinder
    regions.append(
        KernelSpec(
            name="pathfinder",
            family="rodinia",
            pattern=Pattern.STENCIL,
            num_arrays=3,
            flop_chain=2,
            branch_in_body=True,
            iterations=8.0e5,
            footprint_mb=30.0,
            working_set_kb=700.0,
            shared_fraction=0.2,
            scalability_limit=16,
            barriers_per_call=6.0,
            branch_regularity=0.7,
        )
    )

    # -------------------------------------------------------- streamcluster
    regions.append(
        KernelSpec(
            name="streamcluster 451",
            family="rodinia",
            pattern=Pattern.GATHER,
            num_arrays=3,
            flop_chain=7,
            uses_sqrt=True,
            iterations=2.4e6,
            footprint_mb=240.0,
            working_set_kb=20_000.0,
            shared_fraction=0.55,
            barriers_per_call=6.0,
            phase_variability=0.5,
            load_imbalance=1.2,
        )
    )
    regions.append(
        KernelSpec(
            name="streamcluster 539",
            family="rodinia",
            pattern=Pattern.REDUCTION,
            num_arrays=3,
            flop_chain=6,
            uses_atomics=True,
            uses_sqrt=True,
            iterations=2.0e6,
            footprint_mb=220.0,
            working_set_kb=18_000.0,
            shared_fraction=0.6,
            barriers_per_call=6.0,
            phase_variability=0.35,
        )
    )

    # --------------------------------------------------------- blackscholes
    regions.append(
        KernelSpec(
            name="blackscholes",
            family="rodinia",
            pattern=Pattern.COMPUTE,
            num_arrays=4,
            flop_chain=16,
            uses_exp=True,
            uses_sqrt=True,
            iterations=2.2e6,
            footprint_mb=110.0,
            working_set_kb=1_500.0,
            shared_fraction=0.05,
            phase_variability=0.3,
        )
    )

    # --------------------------------------------------------------- HACCmk
    regions.append(
        KernelSpec(
            name="HACCmk",
            family="rodinia",
            pattern=Pattern.COMPUTE,
            num_arrays=4,
            flop_chain=20,
            uses_sqrt=True,
            iterations=2.6e6,
            footprint_mb=20.0,
            working_set_kb=500.0,
            shared_fraction=0.05,
            dependency_chain=0.2,
            phase_variability=0.2,
        )
    )

    # ------------------------------------------------------------ quicksilver
    regions.append(
        KernelSpec(
            name="quicksilver",
            family="rodinia",
            pattern=Pattern.BRANCHY,
            num_arrays=3,
            flop_chain=6,
            uses_sqrt=True,
            iterations=1.6e6,
            footprint_mb=300.0,
            working_set_kb=25_000.0,
            shared_fraction=0.4,
            load_imbalance=1.6,
            branch_regularity=0.45,
            phase_variability=0.3,
        )
    )
    return regions
