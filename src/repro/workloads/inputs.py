"""Input sizes.

The paper's input-size experiment (Figure 10, Section IV-E) uses two inputs
per benchmark: ``size-1`` (NAS CLASS A / Rodinia small) and ``size-2`` (NAS
CLASS B / Rodinia largest).  Scaling an input multiplies the iteration count
and the data footprint, which can move a region from cache-resident to
bandwidth-bound and therefore change its best configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..numasim.profile import WorkloadProfile

SIZE_1 = "size-1"
SIZE_2 = "size-2"
INPUT_SIZES = (SIZE_1, SIZE_2)

#: multiplicative footprint/iteration factors per input size.
_SIZE_FACTORS: Dict[str, float] = {SIZE_1: 1.0, SIZE_2: 4.0}

#: families whose behaviour is particularly input-sensitive; their working
#: set grows faster than their iteration count (e.g. NAS CLASS B grids).
_SENSITIVE_FAMILIES = ("nas", "rodinia")


@dataclass(frozen=True)
class InputScaling:
    """How one region's profile changes with the input size."""

    iterations_factor: float
    footprint_factor: float
    working_set_factor: float


def scaling_for(family: str, size: str) -> InputScaling:
    """The scaling applied to a region of ``family`` at input ``size``."""
    if size not in _SIZE_FACTORS:
        raise KeyError(f"unknown input size {size!r}; known: {INPUT_SIZES}")
    base = _SIZE_FACTORS[size]
    if size == SIZE_1:
        return InputScaling(1.0, 1.0, 1.0)
    if family in _SENSITIVE_FAMILIES:
        return InputScaling(base, base, base * 1.5)
    return InputScaling(base, base, base)


def profile_for_size(profile: WorkloadProfile, family: str, size: str) -> WorkloadProfile:
    """Return the profile of a region at the requested input size."""
    scaling = scaling_for(family, size)
    from dataclasses import replace

    return replace(
        profile,
        iterations=profile.iterations * scaling.iterations_factor,
        footprint_mb=profile.footprint_mb * scaling.footprint_factor,
        working_set_kb=profile.working_set_kb * scaling.working_set_factor,
    )
