"""Mini-IR generation from kernel specifications.

Each :class:`~repro.workloads.spec.KernelSpec` is lowered to a module that
mirrors how Clang lowers an OpenMP parallel region: the region body is an
*outlined* function (attribute ``omp_outlined``) that receives the loop bound
and the array arguments, queries the OpenMP runtime for its thread id, and
iterates over its chunk of the index space.  Patterns differ only in the
loop body, exactly like the real benchmarks differ in their inner loops.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir import (
    F64,
    I64,
    BasicBlock,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    VOID,
    const_float,
    const_int,
    pointer_to,
)
from ..ir.values import Value
from .spec import KernelSpec, Pattern


def _needs_index_array(spec: KernelSpec) -> bool:
    return spec.pattern in (
        Pattern.GATHER,
        Pattern.SCATTER,
        Pattern.POINTER_CHASE,
    ) or spec.second_level_indirection


def _make_helper(module: Module, name: str) -> Function:
    """A small pure helper function the inliner can chew on."""
    helper = Function(name, FunctionType(F64, [F64, F64]), ["x", "y"], module)
    helper.attributes.add("internal")
    helper.attributes.add("inline")
    entry = BasicBlock("entry", helper)
    b = IRBuilder(entry)
    prod = b.fmul(helper.arguments[0], helper.arguments[1], "prod")
    total = b.fadd(prod, helper.arguments[0], "total")
    scaled = b.fmul(total, const_float(0.5), "scaled")
    b.ret(scaled)
    return helper


class KernelIRGenerator:
    """Lowers :class:`KernelSpec` objects to mini-IR modules."""

    def __init__(self, emit_helper_calls: bool = True):
        self.emit_helper_calls = emit_helper_calls

    # ------------------------------------------------------------------ API
    def generate(self, spec: KernelSpec) -> Module:
        module = Module(spec.name)
        module.metadata["family"] = spec.family
        module.metadata["pattern"] = spec.pattern
        module.metadata["region"] = spec.region_function_name

        helper = None
        if self.emit_helper_calls and spec.flop_chain >= 4:
            helper = _make_helper(module, f"blend_{spec.region_function_name}")

        arg_types: List = [I64]
        arg_names = ["n"]
        for i in range(spec.num_arrays):
            arg_types.append(pointer_to(F64))
            arg_names.append(f"a{i}")
        if _needs_index_array(spec):
            arg_types.append(pointer_to(I64))
            arg_names.append("idx")
        if spec.second_level_indirection:
            arg_types.append(pointer_to(I64))
            arg_names.append("idx2")

        fn = Function(
            spec.region_function_name,
            FunctionType(VOID, arg_types),
            arg_names,
            module,
        )
        fn.attributes.add("omp_outlined")

        self._emit_body(fn, spec, helper)
        return module

    # ------------------------------------------------------------- internals
    def _emit_body(self, fn: Function, spec: KernelSpec, helper) -> None:
        entry = BasicBlock("entry", fn)
        header = BasicBlock("loop", fn)
        body_exit_blocks: List[BasicBlock] = []
        latch = BasicBlock("latch", fn)
        exit_block = BasicBlock("exit", fn)

        b = IRBuilder(entry)
        n = fn.arguments[0]
        arrays = [a for a in fn.arguments[1:] if a.type == pointer_to(F64)]
        index_args = [a for a in fn.arguments if a.type == pointer_to(I64)]

        if spec.uses_thread_partition:
            tid = b.call("omp_get_thread_num", [], I64, "tid")
            nth = b.call("omp_get_num_threads", [], I64, "nth")
            chunk = b.sdiv(n, nth, "chunk")
            start = b.mul(tid, chunk, "start")
            end = b.add(start, chunk, "end")
        else:
            start = const_int(0)
            end = n
        if spec.pattern in (Pattern.STENCIL, Pattern.STENCIL2D):
            # Stencil loops skip the boundary cells so that the negative
            # neighbour offsets never index before the array start.
            halo = 1 if spec.pattern == Pattern.STENCIL else 512
            start = b.add(start, const_int(halo), "start_halo")
        if spec.uses_critical:
            b.call("kmpc_critical", [], VOID)
        b.br(header)

        # ----------------------------------------------------------- header
        hb = IRBuilder(header)
        i_phi = hb.phi(I64, "i")
        acc_phi = None
        chase_phi = None
        if spec.pattern == Pattern.REDUCTION:
            acc_phi = hb.phi(F64, "acc")
        if spec.pattern == Pattern.POINTER_CHASE:
            chase_phi = hb.phi(I64, "cursor")

        # Loop body: may create extra blocks (branchy / inner loop).
        body_builder = IRBuilder(header)
        body_builder.position_at_end(header)
        next_values: Dict[str, Value] = {}
        last_block = self._emit_pattern_body(
            fn, spec, body_builder, arrays, index_args, i_phi, acc_phi, chase_phi, helper, latch,
            next_values,
        )

        # ------------------------------------------------------------ latch
        lb = IRBuilder(latch)
        step = const_int(max(1, spec.stride))
        i_next = lb.add(i_phi, step, "inext")
        cond = lb.icmp("slt", i_next, end, "cond")
        # Small kernels (CLOMP-style micro loops) have compile-time-known trip
        # counts in the real benchmarks; exposing the constant as an additional
        # loop guard keeps that static signal without changing the dynamic
        # bound the caller passes in.
        if spec.iterations <= 1e5:
            limit = lb.icmp("slt", i_next, const_int(int(spec.iterations)), "limit")
            cond = lb.and_(cond, limit, "guard")
        lb.condbr(cond, header, exit_block)

        if last_block is not header:
            body_exit_blocks.append(last_block)

        # Wire phis.
        i_phi.add_incoming(start, entry)
        i_phi.add_incoming(i_next, latch)
        if acc_phi is not None:
            acc_phi.add_incoming(const_float(0.0), entry)
            acc_phi.add_incoming(next_values["acc"], latch)
        if chase_phi is not None:
            chase_phi.add_incoming(const_int(0), entry)
            chase_phi.add_incoming(next_values["cursor"], latch)

        # ------------------------------------------------------------- exit
        eb = IRBuilder(exit_block)
        if spec.pattern == Pattern.REDUCTION:
            target = eb.gep(arrays[0], [const_int(0)], "redptr")
            if spec.uses_atomics:
                eb.atomicrmw("fadd", target, next_values["acc"], "old")
            else:
                eb.call("kmpc_reduce", [next_values["acc"]], VOID)
                eb.store(next_values["acc"], target)
        if spec.uses_critical:
            eb.call("kmpc_critical", [], VOID)
        # Regions with heavy synchronisation carry several barrier calls in
        # their outlined body (worksharing loops inside the region); the
        # count is a coarse but static hint of the synchronisation intensity.
        if spec.barriers_per_call >= 1.0:
            barrier_calls = 1
            if spec.barriers_per_call > 5.0:
                barrier_calls = 2
            if spec.barriers_per_call > 20.0:
                barrier_calls = 3
            for _ in range(barrier_calls):
                eb.call("kmpc_barrier", [], VOID)
        eb.ret()

    # ------------------------------------------------------------------
    def _emit_pattern_body(
        self,
        fn: Function,
        spec: KernelSpec,
        b: IRBuilder,
        arrays: List[Value],
        index_args: List[Value],
        i_phi: Value,
        acc_phi,
        chase_phi,
        helper,
        latch: BasicBlock,
        next_values: Dict[str, Value],
    ) -> BasicBlock:
        """Emit the loop body; returns the block that branches to the latch."""
        pattern = spec.pattern
        out = arrays[0]
        in1 = arrays[1] if len(arrays) > 1 else arrays[0]
        in2 = arrays[2] if len(arrays) > 2 else in1

        def flop_chain(seed: Value, other: Value, builder: IRBuilder, length: int) -> Value:
            value = seed
            for k in range(length):
                if k % 2 == 0:
                    value = builder.fmul(value, other, f"c{k}_{builder.function.next_name()}")
                else:
                    value = builder.fadd(value, seed, f"c{k}_{builder.function.next_name()}")
            if spec.uses_sqrt:
                value = builder.call("sqrt", [value], F64)
            if spec.uses_exp:
                value = builder.call("exp", [value], F64)
            if helper is not None:
                value = builder.call(helper, [value, other], F64)
            return value

        if pattern in (Pattern.STREAMING, Pattern.TRIAD, Pattern.COMPUTE, Pattern.BLOCKED):
            pa = b.gep(in1, [i_phi], "pa")
            va = b.load(pa, "va")
            pb = b.gep(in2, [i_phi], "pb")
            vb = b.load(pb, "vb")
            if pattern == Pattern.TRIAD:
                scaled = b.fmul(vb, const_float(3.14159), "scaled")
                result = b.fadd(va, scaled, "result")
            else:
                length = spec.flop_chain if pattern != Pattern.COMPUTE else max(8, spec.flop_chain)
                result = flop_chain(va, vb, b, length)
            if pattern == Pattern.BLOCKED and spec.stride > 1:
                poff = b.gep(in1, [b.add(i_phi, const_int(1), "ip1")], "poff")
                voff = b.load(poff, "voff")
                result = b.fadd(result, voff, "blended")
            if spec.writes_output:
                pout = b.gep(out, [i_phi], "pout")
                b.store(result, pout)
            if spec.branch_in_body:
                return self._wrap_branch(fn, spec, b, result, out, i_phi, latch)
            b.br(latch)
            return b.block

        if pattern in (Pattern.STENCIL, Pattern.STENCIL2D):
            offsets = [-1, 0, 1]
            if pattern == Pattern.STENCIL2D:
                offsets = [-512, -1, 0, 1, 512]
            weights = [0.2, 0.5, 0.3, 0.25, 0.15]
            total: Value = const_float(0.0)
            for k, off in enumerate(offsets):
                idx = b.add(i_phi, const_int(off), f"o{k}") if off != 0 else i_phi
                ptr = b.gep(in1, [idx], f"ps{k}")
                val = b.load(ptr, f"vs{k}")
                weighted = b.fmul(val, const_float(weights[k % len(weights)]), f"w{k}")
                total = b.fadd(total, weighted, f"t{k}")
            result = flop_chain(total, total, b, max(0, spec.flop_chain - 2))
            pout = b.gep(out, [i_phi], "pout")
            b.store(result, pout)
            b.br(latch)
            return b.block

        if pattern == Pattern.REDUCTION:
            pa = b.gep(in1, [i_phi], "pa")
            va = b.load(pa, "va")
            contrib = flop_chain(va, va, b, spec.flop_chain)
            assert acc_phi is not None
            new_acc = b.fadd(acc_phi, contrib, "accnext")
            next_values["acc"] = new_acc
            if spec.uses_atomics and spec.shared_fraction > 0.5:
                # Hot shared counter updated every iteration (worst case).
                counter = b.gep(out, [const_int(0)], "counter")
                b.atomicrmw("fadd", counter, contrib, "oldc")
            b.br(latch)
            return b.block

        if pattern in (Pattern.GATHER, Pattern.SCATTER):
            idx_arr = index_args[0]
            pidx = b.gep(idx_arr, [i_phi], "pidx")
            vidx = b.load(pidx, "vidx")
            if spec.second_level_indirection and len(index_args) > 1:
                pidx2 = b.gep(index_args[1], [vidx], "pidx2")
                vidx = b.load(pidx2, "vidx2")
            if pattern == Pattern.GATHER:
                pa = b.gep(in1, [vidx], "pa")
                va = b.load(pa, "va")
                result = flop_chain(va, va, b, spec.flop_chain)
                pout = b.gep(out, [i_phi], "pout")
                b.store(result, pout)
            else:
                pb = b.gep(in1, [i_phi], "pb")
                vb = b.load(pb, "vb")
                result = flop_chain(vb, vb, b, spec.flop_chain)
                pout = b.gep(out, [vidx], "pout")
                if spec.uses_atomics:
                    b.atomicrmw("fadd", pout, result, "olds")
                else:
                    b.store(result, pout)
            b.br(latch)
            return b.block

        if pattern == Pattern.POINTER_CHASE:
            assert chase_phi is not None
            idx_arr = index_args[0]
            pnext = b.gep(idx_arr, [chase_phi], "pnext")
            cursor_next = b.load(pnext, "cursornext")
            pa = b.gep(in1, [chase_phi], "pa")
            va = b.load(pa, "va")
            result = flop_chain(va, va, b, spec.flop_chain)
            if spec.writes_output:
                pout = b.gep(out, [i_phi], "pout")
                b.store(result, pout)
            next_values["cursor"] = cursor_next
            b.br(latch)
            return b.block

        if pattern == Pattern.BRANCHY:
            pa = b.gep(in1, [i_phi], "pa")
            va = b.load(pa, "va")
            return self._wrap_branch(fn, spec, b, va, out, i_phi, latch, in2)

        if pattern == Pattern.INNER_LOOP:
            # Constant-trip inner loop (single-block self loop) — the shape
            # the loop-unroll pass targets and the shape CLOMP micro-kernels
            # have in practice.
            inner = BasicBlock("inner", fn)
            after = BasicBlock("inner_exit", fn)
            fn.blocks.remove(inner)
            fn.blocks.insert(fn.blocks.index(latch), inner)
            fn.blocks.remove(after)
            fn.blocks.insert(fn.blocks.index(latch), after)
            pa = b.gep(in1, [i_phi], "pa")
            va = b.load(pa, "va")
            b.br(inner)

            ib = IRBuilder(inner)
            j_phi = ib.phi(I64, "j")
            acc_inner = ib.phi(F64, "iacc")
            term = ib.fmul(acc_inner, const_float(1.0001), "term")
            term2 = ib.fadd(term, va, "term2")
            j_next = ib.add(j_phi, const_int(1), "jnext")
            trip = max(1, spec.inner_trip)
            cond = ib.icmp("slt", j_next, const_int(trip), "icond")
            ib.condbr(cond, inner, after)
            j_phi.add_incoming(const_int(0), b.block)
            j_phi.add_incoming(j_next, inner)
            acc_inner.add_incoming(const_float(0.0), b.block)
            acc_inner.add_incoming(term2, inner)

            ab = IRBuilder(after)
            pout = ab.gep(out, [i_phi], "pout")
            ab.store(term2, pout)
            ab.br(latch)
            return after

        raise ValueError(f"unhandled pattern {pattern!r}")

    def _wrap_branch(
        self,
        fn: Function,
        spec: KernelSpec,
        b: IRBuilder,
        value: Value,
        out: Value,
        i_phi: Value,
        latch: BasicBlock,
        other: Value = None,
    ) -> BasicBlock:
        """Emit a data-dependent if/else around extra work, then go to latch."""
        then_block = BasicBlock("then", fn)
        else_block = BasicBlock("else", fn)
        merge = BasicBlock("merge", fn)
        for blk in (then_block, else_block, merge):
            fn.blocks.remove(blk)
            fn.blocks.insert(fn.blocks.index(latch), blk)
        cond = b.fcmp("ogt", value, const_float(0.5), "bcond")
        b.condbr(cond, then_block, else_block)

        tb = IRBuilder(then_block)
        heavy = tb.fmul(value, value, "heavy")
        heavy = tb.call("sqrt", [heavy], F64, "heavys")
        tb.br(merge)

        eb = IRBuilder(else_block)
        light = eb.fadd(value, const_float(1.0), "light")
        eb.br(merge)

        mb = IRBuilder(merge)
        phi = mb.phi(F64, "sel")
        phi.add_incoming(heavy, then_block)
        phi.add_incoming(light, else_block)
        pout = mb.gep(out, [i_phi], "pout")
        mb.store(phi, pout)
        mb.br(latch)
        return merge


def generate_region_module(spec: KernelSpec) -> Module:
    """Convenience wrapper building the module for one spec."""
    return KernelIRGenerator().generate(spec)
