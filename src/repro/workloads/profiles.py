"""Deriving simulator profiles from kernel specifications.

The derivation encodes the (approximate) correspondence between static
structure and dynamic behaviour: loads/stores per iteration come from the
pattern, arithmetic from the flop chain, access-pattern fractions from the
pattern type, synchronisation from the atomics/critical flags.  Dynamic-only
characteristics (footprint, working set, scalability limits, phase
variability) are taken from the spec's dynamic fields, which the IR cannot
express — they are the reason the static model cannot be perfect.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..numasim.profile import WorkloadProfile
from .spec import KernelSpec, Pattern

#: (sequential, strided, irregular) access-pattern fractions per pattern.
_PATTERN_MIX: Dict[str, tuple] = {
    Pattern.STREAMING: (0.85, 0.05, 0.0),
    Pattern.TRIAD: (0.9, 0.05, 0.0),
    Pattern.STENCIL: (0.75, 0.2, 0.0),
    Pattern.STENCIL2D: (0.55, 0.4, 0.0),
    Pattern.REDUCTION: (0.8, 0.05, 0.0),
    Pattern.GATHER: (0.25, 0.05, 0.65),
    Pattern.SCATTER: (0.25, 0.05, 0.65),
    Pattern.POINTER_CHASE: (0.05, 0.05, 0.85),
    Pattern.BRANCHY: (0.55, 0.15, 0.15),
    Pattern.INNER_LOOP: (0.3, 0.1, 0.0),
    Pattern.BLOCKED: (0.45, 0.45, 0.0),
    Pattern.COMPUTE: (0.25, 0.1, 0.0),
}

#: (loads, stores) per iteration for each pattern (element accesses).
_PATTERN_ACCESSES: Dict[str, tuple] = {
    Pattern.STREAMING: (2, 1),
    Pattern.TRIAD: (2, 1),
    Pattern.STENCIL: (3, 1),
    Pattern.STENCIL2D: (5, 1),
    Pattern.REDUCTION: (1, 0),
    Pattern.GATHER: (3, 1),
    Pattern.SCATTER: (2, 1),
    Pattern.POINTER_CHASE: (2, 1),
    Pattern.BRANCHY: (1, 1),
    Pattern.INNER_LOOP: (1, 1),
    Pattern.BLOCKED: (3, 1),
    Pattern.COMPUTE: (2, 1),
}

#: baseline dependency chain per pattern (0 = independent iterations).
_PATTERN_DEPENDENCY: Dict[str, float] = {
    Pattern.STREAMING: 0.15,
    Pattern.TRIAD: 0.1,
    Pattern.STENCIL: 0.2,
    Pattern.STENCIL2D: 0.25,
    Pattern.REDUCTION: 0.45,
    Pattern.GATHER: 0.35,
    Pattern.SCATTER: 0.35,
    Pattern.POINTER_CHASE: 0.95,
    Pattern.BRANCHY: 0.3,
    Pattern.INNER_LOOP: 0.5,
    Pattern.BLOCKED: 0.2,
    Pattern.COMPUTE: 0.35,
}


def derive_profile(spec: KernelSpec) -> WorkloadProfile:
    """Build the :class:`WorkloadProfile` corresponding to ``spec``."""
    sequential, strided, irregular = _PATTERN_MIX[spec.pattern]
    loads, stores = _PATTERN_ACCESSES[spec.pattern]
    if not spec.writes_output:
        stores = max(0, stores - 1)

    # Extra math calls lengthen the per-iteration arithmetic.
    flops = float(spec.flop_chain)
    if spec.pattern == Pattern.COMPUTE:
        flops = max(8.0, flops)
    if spec.pattern in (Pattern.STENCIL, Pattern.STENCIL2D):
        flops += 2.0 * (5 if spec.pattern == Pattern.STENCIL2D else 3)
    if spec.uses_sqrt:
        flops += 12.0
    if spec.uses_exp:
        flops += 20.0
    if spec.inner_trip > 0:
        flops += 2.0 * spec.inner_trip
    flops = max(1.0, flops)

    bytes_per_iter = 8.0 * (loads + stores)
    write_ratio = stores / max(1.0, loads + stores)

    atomics_per_iter = 0.0
    if spec.uses_atomics:
        if spec.pattern == Pattern.SCATTER:
            atomics_per_iter = 1.0
        elif spec.pattern == Pattern.REDUCTION and spec.shared_fraction > 0.5:
            atomics_per_iter = 1.0
        else:
            atomics_per_iter = 1.0 / max(1.0, spec.iterations / (spec.iterations * 0.001 + 1.0))
            atomics_per_iter = min(0.05, atomics_per_iter)

    critical_fraction = 0.0
    if spec.uses_critical:
        critical_fraction = 0.02

    dependency = (
        spec.dependency_chain
        if spec.dependency_chain is not None
        else _PATTERN_DEPENDENCY[spec.pattern]
    )
    branch_regularity = spec.branch_regularity
    if spec.branch_in_body or spec.pattern == Pattern.BRANCHY:
        branch_regularity = min(branch_regularity, 0.65)

    profile = WorkloadProfile(
        name=spec.name,
        iterations=spec.iterations,
        calls=spec.calls,
        flops_per_iter=flops,
        bytes_per_iter=bytes_per_iter,
        footprint_mb=spec.footprint_mb,
        working_set_kb=spec.working_set_kb,
        sequential_fraction=sequential,
        strided_fraction=strided,
        irregular_fraction=irregular,
        write_ratio=write_ratio,
        shared_fraction=spec.shared_fraction,
        init_by_master=spec.init_by_master,
        serial_fraction=spec.serial_fraction,
        load_imbalance=spec.load_imbalance,
        atomics_per_iter=atomics_per_iter,
        critical_fraction=critical_fraction,
        barriers_per_call=spec.barriers_per_call,
        false_sharing=spec.false_sharing,
        dependency_chain=dependency,
        branch_regularity=branch_regularity,
        phase_variability=spec.phase_variability,
        scalability_limit=spec.scalability_limit,
    )
    if spec.profile_overrides:
        profile = replace(profile, **spec.profile_overrides)
    return profile
