"""Kernel specifications.

A :class:`KernelSpec` is the single source of truth for one OpenMP parallel
region: the IR generator (:mod:`repro.workloads.irgen`) turns it into a
mini-IR module and the profile builder (:mod:`repro.workloads.profiles`)
turns it into the :class:`~repro.numasim.profile.WorkloadProfile` the
simulator times.  Because both views derive from the same spec, the static
structure of the region is predictive of its dynamic behaviour — up to the
explicitly "dynamic-only" knobs (footprint, phase variability, scalability
limit) that the IR cannot express, which is precisely the gap the paper's
hybrid model exists to close.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class Pattern:
    """Loop-body memory/compute patterns supported by the generator."""

    STREAMING = "streaming"           # c[i] = f(a[i], b[i])
    TRIAD = "triad"                   # a[i] = b[i] + s * c[i]
    STENCIL = "stencil"               # b[i] = w0*a[i-1] + w1*a[i] + w2*a[i+1]
    STENCIL2D = "stencil2d"           # 5-point stencil over a row-major grid
    REDUCTION = "reduction"           # acc += f(a[i]), atomic combine at the end
    GATHER = "gather"                 # b[i] = a[idx[i]]
    SCATTER = "scatter"               # a[idx[i]] += f(b[i])
    POINTER_CHASE = "pointer_chase"   # j = next[j]
    BRANCHY = "branchy"               # data-dependent if/else work
    INNER_LOOP = "inner_loop"         # small constant-trip inner loop (CLOMP)
    BLOCKED = "blocked"               # blocked traversal with strided accesses
    COMPUTE = "compute"               # long arithmetic chains, little memory


ALL_PATTERNS = (
    Pattern.STREAMING,
    Pattern.TRIAD,
    Pattern.STENCIL,
    Pattern.STENCIL2D,
    Pattern.REDUCTION,
    Pattern.GATHER,
    Pattern.SCATTER,
    Pattern.POINTER_CHASE,
    Pattern.BRANCHY,
    Pattern.INNER_LOOP,
    Pattern.BLOCKED,
    Pattern.COMPUTE,
)


@dataclass(frozen=True)
class KernelSpec:
    """Static + dynamic description of one parallel region."""

    name: str
    family: str                       # "nas", "rodinia", "lulesh", "clomp"
    pattern: str = Pattern.STREAMING

    # ---- static structure (visible in the IR) ------------------------------
    num_arrays: int = 3               # number of f64* array arguments
    flop_chain: int = 2               # fmul/fadd chain length per element
    stride: int = 1                   # access stride in elements
    uses_sqrt: bool = False           # calls @sqrt in the body
    uses_exp: bool = False            # calls @exp in the body
    uses_thread_partition: bool = True  # calls omp_get_thread_num/num_threads
    uses_atomics: bool = False        # atomicrmw combine
    uses_critical: bool = False       # kmpc_critical call pair
    inner_trip: int = 0               # constant-trip inner loop length (0 = none)
    branch_in_body: bool = False      # data-dependent branch
    writes_output: bool = True        # stores to an output array
    second_level_indirection: bool = False  # a[idx[idx2[i]]]

    # ---- dynamic behaviour (only partly visible statically) ----------------
    iterations: float = 1e6
    calls: int = 10
    footprint_mb: float = 64.0
    working_set_kb: float = 1024.0
    shared_fraction: float = 0.1
    load_imbalance: float = 1.05
    serial_fraction: float = 0.02
    barriers_per_call: float = 1.0
    false_sharing: float = 0.0
    init_by_master: bool = True
    scalability_limit: Optional[int] = None
    phase_variability: float = 0.0
    branch_regularity: float = 0.9
    dependency_chain: Optional[float] = None   # override derived value

    #: free-form extra overrides applied to the derived WorkloadProfile
    profile_overrides: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.pattern not in ALL_PATTERNS:
            raise ValueError(f"{self.name}: unknown pattern {self.pattern!r}")
        if self.num_arrays < 1:
            raise ValueError(f"{self.name}: at least one array is required")
        if self.flop_chain < 0:
            raise ValueError(f"{self.name}: flop_chain must be >= 0")
        if self.inner_trip < 0:
            raise ValueError(f"{self.name}: inner_trip must be >= 0")

    @property
    def region_function_name(self) -> str:
        """Name of the OpenMP outlined function in the generated module."""
        sanitized = self.name.replace(" ", "_").replace("+", "p").replace("-", "_")
        return f"omp_outlined_{sanitized}"
