"""The 57-region benchmark suite.

Combines the four families (NAS, Rodinia + proxy apps, LULESH, CLOMP) into
the same 57 OpenMP parallel regions the paper evaluates, and materialises
each region as a :class:`Region`: its kernel spec, its generated IR module
and its simulator profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.module import Module
from ..numasim.profile import WorkloadProfile
from .families import clomp_regions, lulesh_regions, nas_regions, rodinia_regions
from .inputs import SIZE_1, profile_for_size
from .irgen import KernelIRGenerator
from .profiles import derive_profile
from .spec import KernelSpec


@dataclass
class Region:
    """One OpenMP parallel region of the suite."""

    spec: KernelSpec
    module: Module
    profile: WorkloadProfile

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def family(self) -> str:
        return self.spec.family

    @property
    def function_name(self) -> str:
        return self.spec.region_function_name

    def profile_at(self, size: str) -> WorkloadProfile:
        """Profile of this region at a given input size."""
        return profile_for_size(self.profile, self.family, size)


def all_specs() -> List[KernelSpec]:
    """Kernel specs of all 57 regions, in a stable order."""
    specs = nas_regions() + rodinia_regions() + lulesh_regions() + clomp_regions()
    names = [s.name for s in specs]
    if len(names) != len(set(names)):
        duplicates = {n for n in names if names.count(n) > 1}
        raise RuntimeError(f"duplicate region names in suite: {duplicates}")
    return specs


def build_suite(
    families: Optional[List[str]] = None,
    limit: Optional[int] = None,
    emit_helper_calls: bool = True,
) -> List[Region]:
    """Build the region suite (IR modules + profiles).

    Parameters
    ----------
    families:
        Restrict to a subset of families (useful for fast tests).
    limit:
        Keep only the first ``limit`` regions after filtering.
    """
    generator = KernelIRGenerator(emit_helper_calls=emit_helper_calls)
    regions: List[Region] = []
    for spec in all_specs():
        if families is not None and spec.family not in families:
            continue
        module = generator.generate(spec)
        profile = derive_profile(spec)
        regions.append(Region(spec=spec, module=module, profile=profile))
        if limit is not None and len(regions) >= limit:
            break
    return regions


def suite_summary(regions: List[Region]) -> Dict[str, float]:
    """Aggregate statistics about the suite (used by docs and tests)."""
    if not regions:
        return {"regions": 0.0}
    per_family: Dict[str, int] = {}
    for region in regions:
        per_family[region.family] = per_family.get(region.family, 0) + 1
    instructions = [region.module.instruction_count() for region in regions]
    return {
        "regions": float(len(regions)),
        "families": float(len(per_family)),
        **{f"family_{name}": float(count) for name, count in per_family.items()},
        "instructions_mean": float(sum(instructions) / len(instructions)),
        "instructions_max": float(max(instructions)),
    }


def region_by_name(regions: List[Region], name: str) -> Region:
    for region in regions:
        if region.name == name:
            return region
    raise KeyError(f"no region named {name!r}")
