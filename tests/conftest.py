"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests without installing the package (e.g. straight from
# a source checkout): put ``src`` on the path if the import fails.
try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig
from repro.ir import (
    BasicBlock,
    F64,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    const_float,
    const_int,
    pointer_to,
)
from repro.workloads import build_suite


def build_dot_product_module() -> Module:
    """A small reference module used across many IR tests."""
    module = Module("dot")
    fn = Function(
        "dot",
        FunctionType(F64, [I64, pointer_to(F64), pointer_to(F64)]),
        ["n", "a", "b"],
        module,
    )
    fn.attributes.add("omp_outlined")
    entry = BasicBlock("entry", fn)
    loop = BasicBlock("loop", fn)
    exit_block = BasicBlock("exit", fn)
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    i = b.phi(I64, "i")
    acc = b.phi(F64, "acc")
    pa = b.gep(fn.arguments[1], [i], "pa")
    va = b.load(pa, "va")
    pb = b.gep(fn.arguments[2], [i], "pb")
    vb = b.load(pb, "vb")
    prod = b.fmul(va, vb, "prod")
    acc_next = b.fadd(acc, prod, "accnext")
    i_next = b.add(i, const_int(1), "inext")
    cond = b.icmp("slt", i_next, fn.arguments[0], "cond")
    b.condbr(cond, loop, exit_block)
    i.add_incoming(const_int(0), entry)
    i.add_incoming(i_next, loop)
    acc.add_incoming(const_float(0.0), entry)
    acc.add_incoming(acc_next, loop)
    b.position_at_end(exit_block)
    b.ret(acc_next)
    return module


@pytest.fixture
def dot_module() -> Module:
    return build_dot_product_module()


@pytest.fixture(scope="session")
def region_suite():
    """The full 57-region suite (built once per test session)."""
    return build_suite()


@pytest.fixture(scope="session")
def small_suite():
    """A small suite used by the core/pipeline tests (fast)."""
    return build_suite(families=["clomp", "lulesh"], limit=12)


@pytest.fixture(scope="session")
def tiny_pipeline():
    """A deliberately tiny end-to-end pipeline (single machine, few folds)."""
    config = PipelineConfig(
        machines=("skylake",),
        families=["clomp", "lulesh", "rodinia"],
        region_limit=18,
        num_flag_sequences=3,
        num_labels=6,
        folds=3,
        static_model=StaticModelConfig(
            hidden_dim=16, graph_vector_dim=16, num_rgcn_layers=1, epochs=4, batch_size=16
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
    )
    return ReproPipeline(config).build()


@pytest.fixture(scope="session")
def tiny_evaluation(tiny_pipeline):
    return tiny_pipeline.evaluate("skylake")
