"""Fixture: violates the ``api-surface`` rule (never imported)."""

__all__ = ["exists", "ghost", "exists"]


def exists():
    return True


class ServiceConfig:
    """A legacy shim whose docstring forgets to say it is legacy."""
