"""Fixture: violates the ``exception-codec`` rule (never imported).

The codec table here has every defect the rule detects: a duplicate
kind, a subclass entry shadowed by its base (ordered after it), an
encode kind the decoder cannot rebuild, and an exception type raised on
a worker-reachable path that crosses the pipe demoted to its base.
"""


class HubError(Exception):
    pass


class OverCapacityError(HubError):
    pass


class QuarantinedError(HubError):
    pass


class DrainingError(HubError):
    """Raised worker-side but missing from _KINDS: decodes as plain hub."""


_KINDS = (
    ("hub", HubError),
    ("over-capacity", OverCapacityError),  # dead: HubError matches first
    ("quarantined", QuarantinedError),  # dead, and no decoder either
    ("hub", HubError),  # duplicate kind  # noqa: F601
)


def encode_exception(exc):
    for kind, exc_type in _KINDS:
        if isinstance(exc, exc_type):
            return {"kind": kind, "message": str(exc)}
    return {"kind": "internal", "message": str(exc)}


def decode_exception(payload):
    kind = payload.get("kind")
    message = str(payload.get("message", ""))
    if kind == "hub":
        return HubError(message)
    if kind == "over-capacity":
        return OverCapacityError(message)
    return Exception(message)


class ReplicaWorker:
    def run(self, request):
        return self._handle(request)

    def _handle(self, request):
        if request is None:
            raise DrainingError("shutting down")
        return request
