"""Fixture: violates the ``lock-discipline`` rule (never imported)."""

import threading
import time


class Worker:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def sleepy(self):
        with self._a:
            time.sleep(0.5)  # blocking call while the lock is held

    def forward(self):
        with self._a:
            with self._b:
                return 1

    def backward(self):
        with self._b:
            with self._a:  # opposite order: static inversion
                return 2
