"""Fixture: violates the ``path-hygiene`` rule (never imported)."""

import os


class Storage:
    def __init__(self, root):
        self.root = str(root)  # str() coercion into a path-named attribute

    def ensure(self, obj):
        os.makedirs(str(obj), exist_ok=True)  # str() fed to a path call
        return os.path.join(self.root, f"{obj.name}-artifacts")  # object attr
