"""Fixture: violates the ``pickle-safety`` rule (never imported).

``WIRE_TYPES`` declares a config class that parks a lock on itself, a
result class that transitively drags in a handle-holding helper, a
class smuggling a lambda, and a name that resolves to nothing.
"""

import threading

_KINDS = (("error", Exception),)

WIRE_TYPES = (
    WireConfig,
    WireResult,
    WireCallback,
    GhostType,  # no such class anywhere: stale declaration
)


class WireConfig:
    def __init__(self, root):
        self.root = root
        self._guard = threading.Lock()  # process-local: never pickles


class SpanRecorder:
    def __init__(self, path):
        self._handle = open(path, "a")  # file handle: never pickles


class WireResult:
    def __init__(self, values, journal_path):
        self.values = list(values)
        self.recorder = SpanRecorder(journal_path)  # hazard held via chain


class WireCallback:
    def __init__(self, scale):
        self.transform = lambda value: value * scale  # lambdas never pickle
