"""Fixture: violates the ``engine-purity`` rule (never imported)."""


class CountingModel:
    def __init__(self):
        self.calls = 0
        self._scratch = {}

    def infer(self, plan):
        self._bump()
        return self._score(plan)

    def _bump(self):
        self.calls += 1  # mutation reachable from infer()

    def _score(self, plan):
        self._scratch["last"] = plan  # subscript store through self
        return 0
