"""Fixture: violates the ``route-registry`` rule (never imported).

The dispatcher serves a route missing from ``ROUTES``, the table
registers a route nobody serves, one key has a bogus method, and one
entry has an empty description.
"""

ROUTES = {
    "GET /healthz": "liveness probe",
    "GET /v1/ghost": "registered but never served",
    "BREW /v1/predict": "not an HTTP method",
    "GET /v1/models": "",
}


class ServingApp:
    def _route(self, path, query=None):
        if path == "/healthz":
            return {"GET": lambda body: {"ok": True}}
        if path == "/v1/models":
            return {"GET": lambda body: []}
        if path == "/v1/debug/secret":  # unregistered route
            return {"GET": lambda body: {"shh": True}}
        return None
