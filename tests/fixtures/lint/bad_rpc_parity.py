"""Fixture: violates the ``rpc-parity`` rule (never imported).

Drift in every direction the rule checks: an unmirrored hub method, a
supervisor-only method without a MIRROR_EXTRA declaration, an
incompatible signature, a stale exemption, an op the worker never
handles, an op the supervisor never dispatches, an admin action with no
worker branch, and a dead worker branch.
"""

OP_SUBMIT = "submit"
OP_FORGOTTEN = "forgotten"  # defined; worker never compares against it


class ModelHub:
    def predict(self, name, request):
        return name, request

    def quarantine(self, name, reason="operator request"):
        return name, reason

    def brand_new_admin(self, name):  # no supervisor mirror
        return name


class ReplicaSupervisor:
    MIRROR_EXEMPT = frozenset({"predict"})  # stale: predict IS mirrored
    MIRROR_EXTRA = frozenset()

    def predict(self, name, request):
        self._send(OP_SUBMIT, {"name": name, "request": request})
        self._send(OP_FORGOTTEN, {})

    def quarantine(self, name):  # signature drift: no reason=... default
        self._admin_broadcast("quarantine", {"name": name})
        self._admin_broadcast("vanish", {"name": name})  # no worker branch

    def replica_status(self):  # supervisor-only, not in MIRROR_EXTRA
        return []

    def _send(self, op, payload):
        return op, payload

    def _admin_broadcast(self, action, args):
        return action, args


class ReplicaWorker:
    def run(self, op, payload):
        if op == OP_SUBMIT:
            return payload
        return None

    def _admin(self, action, args):
        if action == "quarantine":
            return args
        if action == "ghost":  # dead branch: never dispatched
            return args
        return None
