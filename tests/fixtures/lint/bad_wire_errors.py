"""Fixture: violates the ``wire-errors`` rule (never imported)."""

ERROR_CODES = {
    "zombie-code": "registered here but raised nowhere",
    "blank-code": "",
    "zombie-code": "duplicate registration of the same code",  # noqa: F601
}


def error_payload(status, code, message):
    return {"error": {"status": status, "code": code, "message": message}}


def handle():
    return error_payload(400, "phantom-code", "raised but absent from ERROR_CODES")
