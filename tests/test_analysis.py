"""Tests for :mod:`repro.analysis` — the project-invariant linter.

Every shipped rule is exercised against a fixture module under
``tests/fixtures/lint/`` that violates it (via the JSON reporter, the
same output CI archives), the pragma waiver is proven to suppress, the
CLI exit codes are pinned, and — the actual point of the package — the
repo's own ``src/`` tree is asserted clean.
"""

import json
import os

import pytest

from repro.analysis import all_rules, render_json, render_text, run_rules
from repro.analysis.cli import main as lint_main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def fixture_findings(name, rule=None):
    report = run_rules([os.path.join(FIXTURES, name)])
    findings = render_json(report)["findings"]
    if rule is not None:
        findings = [f for f in findings if f["rule"] == rule]
    return findings


class TestRulesOnFixtures:
    def test_lock_discipline_flags_blocking_call_under_lock(self):
        findings = fixture_findings("bad_lock_discipline.py", "lock-discipline")
        assert any(
            "time.sleep()" in f["message"] and "_a" in f["message"] for f in findings
        )

    def test_lock_discipline_flags_static_inversion(self):
        findings = fixture_findings("bad_lock_discipline.py", "lock-discipline")
        assert any("lock-order inversion" in f["message"] for f in findings)

    def test_engine_purity_flags_mutation_reachable_from_infer(self):
        findings = fixture_findings("bad_purity.py", "engine-purity")
        # Both the augmented assignment in the helper and the subscript
        # store two calls deep are reachable from infer().
        assert any("CountingModel._bump" in f["message"] for f in findings)
        assert any("CountingModel._score" in f["message"] for f in findings)

    def test_wire_errors_flags_registry_drift(self):
        findings = fixture_findings("bad_wire_errors.py", "wire-errors")
        messages = [f["message"] for f in findings]
        assert any("duplicate error code 'zombie-code'" in m for m in messages)
        assert any(
            "'zombie-code' is registered but never raised" in m for m in messages
        )
        assert any("'blank-code' has no description" in m for m in messages)
        assert any(
            "'phantom-code' is raised but missing from ERROR_CODES" in m
            for m in messages
        )

    def test_path_hygiene_flags_str_coercions_and_fstrings(self):
        findings = fixture_findings("bad_path_hygiene.py", "path-hygiene")
        messages = [f["message"] for f in findings]
        assert any("str() coercion passed to os.makedirs()" in m for m in messages)
        assert any("path-like name 'root'" in m for m in messages)
        assert any("'obj.name'" in m for m in messages)

    def test_api_surface_flags_all_drift_and_missing_deprecation(self):
        findings = fixture_findings("bad_api_surface.py", "api-surface")
        messages = [f["message"] for f in findings]
        assert any("__all__ exports 'ghost'" in m for m in messages)
        assert any("duplicate __all__ entry 'exists'" in m for m in messages)
        assert any("ServiceConfig" in m and "deprecation" in m for m in messages)

    def test_every_shipped_rule_has_a_firing_fixture(self):
        # The contract from the package docstring: a rule without a
        # fixture that proves it fires is a rule nobody knows works.
        report = run_rules([FIXTURES])
        fired = {f["rule"] for f in render_json(report)["findings"]}
        assert {rule.name for rule in all_rules()} <= fired


class TestEngine:
    def test_repo_src_tree_is_clean(self):
        report = run_rules([SRC])
        assert report.findings == [], render_text(report)

    def test_pragma_suppresses_only_the_named_rule(self, tmp_path):
        victim = tmp_path / "pyproject.toml"
        victim.write_text("[project]\nname='x'\n")
        module = tmp_path / "waived.py"
        module.write_text(
            "import threading\n"
            "import time\n"
            "\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)  # lint: allow(lock-discipline)\n"
            "\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.2)  # lint: allow(some-other-rule)\n"
        )
        report = run_rules([str(module)])
        assert [f.line for f in report.findings] == [14]

    def test_syntax_error_becomes_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        report = run_rules([str(bad)])
        assert [f.rule for f in report.findings] == ["syntax"]

    def test_json_report_schema(self):
        report = run_rules([os.path.join(FIXTURES, "bad_api_surface.py")])
        payload = render_json(report)
        assert payload["version"] == 1
        assert payload["modules"] == 1
        assert set(payload["rules"]) == {rule.name for rule in all_rules()}
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "message"}
            assert isinstance(finding["line"], int)

    def test_findings_are_sorted_by_path_then_line(self):
        report = run_rules([FIXTURES])
        keys = [(f.path, f.line, f.rule) for f in report.findings]
        assert keys == sorted(keys)


class TestCli:
    def test_exit_one_on_findings_and_json_report_artifact(self, tmp_path, capsys):
        out = tmp_path / "report" / "lint.json"
        code = lint_main([FIXTURES, "--json-report", str(out)])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert payload["findings"]
        assert "[lock-discipline]" in capsys.readouterr().out

    def test_exit_zero_on_clean_tree(self, capsys):
        assert lint_main([SRC]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_format_on_stdout(self, capsys):
        code = lint_main(["--format", "json", FIXTURES])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1

    def test_exit_two_on_usage_errors(self, capsys):
        assert lint_main([]) == 2
        assert lint_main(["/no/such/path.py"]) == 2
        assert lint_main(["--rule", "not-a-rule", FIXTURES]) == 2
        err = capsys.readouterr().err
        assert "no paths given" in err
        assert "no such path" in err
        assert "unknown rule" in err

    def test_rule_subset_runs_only_that_rule(self, capsys):
        code = lint_main(["--rule", "api-surface", "--format", "json", FIXTURES])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == ["api-surface"]
        assert {f["rule"] for f in payload["findings"]} == {"api-surface"}

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.name in out
