"""Tests for :mod:`repro.analysis` — the project-invariant linter.

Every shipped rule is exercised against a fixture module under
``tests/fixtures/lint/`` that violates it (via the JSON reporter, the
same output CI archives), the pragma waiver is proven to suppress (and
to rot loudly when stale), the incremental cache is proven to hit via
its counters, the CLI exit codes are pinned, the cross-boundary rules
are proven to catch seeded mutations of the *real* serving tree, and —
the actual point of the package — the repo's own ``src/`` tree is
asserted clean.
"""

import json
import os
import shutil
import subprocess

import pytest

from repro.analysis import all_rules, render_json, render_text, run_rules
from repro.analysis.cache import LintCache
from repro.analysis.cli import main as lint_main
from repro.analysis.rules import (
    ExceptionCodecRule,
    PickleSafetyRule,
    RouteRegistryRule,
    RpcParityRule,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")
SERVING = os.path.join(SRC, "repro", "serving")


def fixture_findings(name, rule=None):
    report = run_rules([os.path.join(FIXTURES, name)])
    findings = render_json(report)["findings"]
    if rule is not None:
        findings = [f for f in findings if f["rule"] == rule]
    return findings


class TestRulesOnFixtures:
    def test_lock_discipline_flags_blocking_call_under_lock(self):
        findings = fixture_findings("bad_lock_discipline.py", "lock-discipline")
        assert any(
            "time.sleep()" in f["message"] and "_a" in f["message"] for f in findings
        )

    def test_lock_discipline_flags_static_inversion(self):
        findings = fixture_findings("bad_lock_discipline.py", "lock-discipline")
        assert any("lock-order inversion" in f["message"] for f in findings)

    def test_engine_purity_flags_mutation_reachable_from_infer(self):
        findings = fixture_findings("bad_purity.py", "engine-purity")
        # Both the augmented assignment in the helper and the subscript
        # store two calls deep are reachable from infer().
        assert any("CountingModel._bump" in f["message"] for f in findings)
        assert any("CountingModel._score" in f["message"] for f in findings)

    def test_wire_errors_flags_registry_drift(self):
        findings = fixture_findings("bad_wire_errors.py", "wire-errors")
        messages = [f["message"] for f in findings]
        assert any("duplicate error code 'zombie-code'" in m for m in messages)
        assert any(
            "'zombie-code' is registered but never raised" in m for m in messages
        )
        assert any("'blank-code' has no description" in m for m in messages)
        assert any(
            "'phantom-code' is raised but missing from ERROR_CODES" in m
            for m in messages
        )

    def test_path_hygiene_flags_str_coercions_and_fstrings(self):
        findings = fixture_findings("bad_path_hygiene.py", "path-hygiene")
        messages = [f["message"] for f in findings]
        assert any("str() coercion passed to os.makedirs()" in m for m in messages)
        assert any("path-like name 'root'" in m for m in messages)
        assert any("'obj.name'" in m for m in messages)

    def test_api_surface_flags_all_drift_and_missing_deprecation(self):
        findings = fixture_findings("bad_api_surface.py", "api-surface")
        messages = [f["message"] for f in findings]
        assert any("__all__ exports 'ghost'" in m for m in messages)
        assert any("duplicate __all__ entry 'exists'" in m for m in messages)
        assert any("ServiceConfig" in m and "deprecation" in m for m in messages)

    def test_rpc_parity_flags_every_drift_direction(self):
        findings = fixture_findings("bad_rpc_parity.py", "rpc-parity")
        messages = [f["message"] for f in findings]
        assert any("'brand_new_admin' has no ReplicaSupervisor mirror" in m for m in messages)
        assert any("'replica_status' does not exist on ModelHub" in m for m in messages)
        assert any("not call-compatible" in m and "quarantine" in m for m in messages)
        assert any("stale MIRROR_EXEMPT entry 'predict'" in m for m in messages)
        assert any("OP_FORGOTTEN is never handled" in m for m in messages)
        assert any(
            "'vanish' is dispatched supervisor-side" in m for m in messages
        )
        assert any("'ghost' is handled by ReplicaWorker._admin" in m for m in messages)

    def test_exception_codec_flags_ordering_coverage_and_reachability(self):
        findings = fixture_findings("bad_exception_codec.py", "exception-codec")
        messages = [f["message"] for f in findings]
        assert any("duplicate codec kind 'hub'" in m for m in messages)
        assert any(
            "('over-capacity', OverCapacityError) is unreachable" in m
            for m in messages
        )
        assert any(
            "encode kind 'quarantined' has no decoder" in m for m in messages
        )
        assert any(
            "DrainingError is raised on a worker-reachable path" in m
            and "demoted to its base class HubError" in m
            for m in messages
        )

    def test_pickle_safety_flags_hazards_and_transitive_chains(self):
        findings = fixture_findings("bad_pickle_safety.py", "pickle-safety")
        messages = [f["message"] for f in findings]
        assert any("Lock()" in m and "self._guard" in m for m in messages)
        assert any("a lambda" in m and "self.transform" in m for m in messages)
        assert any(
            "held via WireResult -> SpanRecorder" in m and "open()" in m
            for m in messages
        )
        assert any("'GhostType'" in m and "stale declaration" in m for m in messages)

    def test_pickle_safety_trusts_imports_on_subset_runs(self):
        """A --changed-only sweep may lint the transport module without the
        modules defining its WIRE_TYPES classes; imported names must read
        as out-of-scope, not stale."""
        transport = os.path.join(SERVING, "replica", "transport.py")
        report = run_rules([transport], rules=[PickleSafetyRule()])
        messages = [f.message for f in report.findings]
        assert not any("stale declaration" in m for m in messages), messages

    def test_route_registry_flags_drift_in_both_directions(self):
        findings = fixture_findings("bad_route_registry.py", "route-registry")
        messages = [f["message"] for f in findings]
        assert any(
            "'GET /v1/debug/secret' is served by _route but missing" in m
            for m in messages
        )
        assert any(
            "'GET /v1/ghost' is not served by _route" in m for m in messages
        )
        assert any("'BREW /v1/predict' is not of the form" in m for m in messages)
        assert any(
            "'GET /v1/models' needs a non-empty description" in m for m in messages
        )

    def test_every_shipped_rule_has_a_firing_fixture(self):
        # The contract from the package docstring: a rule without a
        # fixture that proves it fires is a rule nobody knows works.
        report = run_rules([FIXTURES])
        fired = {f["rule"] for f in render_json(report)["findings"]}
        assert {rule.name for rule in all_rules()} <= fired


class TestSeededMutations:
    """The cross-boundary rules must catch real drift seeded into copies
    of the real serving tree — fixtures prove the rules fire, these prove
    they fire on the code they were built to guard."""

    def _copy(self, tmp_path, names):
        paths = []
        for name in names:
            dest = tmp_path / os.path.basename(name)
            shutil.copyfile(os.path.join(SERVING, name), dest)
            paths.append(str(dest))
        return paths

    def test_new_hub_method_without_mirror_is_caught(self, tmp_path):
        paths = self._copy(
            tmp_path, ["hub.py", "replica/supervisor.py", "replica/worker.py"]
        )
        rule = [RpcParityRule()]
        assert run_rules(paths, rules=rule).findings == []
        hub = tmp_path / "hub.py"
        source = hub.read_text()
        needle = "    def predict("
        hub.write_text(
            source.replace(
                needle,
                "    def brand_new_admin(self, name):\n"
                "        return name\n\n" + needle,
                1,
            )
        )
        findings = run_rules(paths, rules=rule).findings
        assert any(
            "'brand_new_admin' has no ReplicaSupervisor mirror" in f.message
            for f in findings
        )

    def test_codec_entry_ordered_after_its_base_is_caught(self, tmp_path):
        paths = self._copy(
            tmp_path, ["replica/transport.py", "replica/config.py", "hub.py"]
        )
        rule = [ExceptionCodecRule()]
        assert run_rules(paths, rules=rule).findings == []
        transport = tmp_path / "transport.py"
        source = transport.read_text()
        mutated = source.replace(
            '_KINDS: Tuple[Tuple[str, type], ...] = (\n',
            '_KINDS: Tuple[Tuple[str, type], ...] = (\n    ("base-first", HubError),\n',
            1,
        )
        assert mutated != source
        transport.write_text(mutated)
        findings = run_rules(paths, rules=rule).findings
        assert any(
            "is unreachable" in f.message and "'base-first'" in f.message
            for f in findings
        )

    def test_lock_smuggled_into_wire_type_is_caught(self, tmp_path):
        paths = self._copy(
            tmp_path,
            [
                "replica/transport.py",
                "replica/config.py",
                "service.py",
                "ensemble.py",
            ]
            + [os.path.join(os.pardir, "graphs", "graph.py")],
        )
        rule = [PickleSafetyRule()]
        baseline = run_rules(paths, rules=rule).findings
        # Only the wire types resolvable from the copied subset matter;
        # the baseline must not flag any hazard.
        assert not any("cannot cross the replica pipe" in f.message for f in baseline)
        config = tmp_path / "config.py"
        source = config.read_text()
        needle = "        self.registry_root = "
        mutated = source.replace(
            needle,
            "        self._guard = threading.Lock()\n" + needle,
            1,
        )
        assert mutated != source
        config.write_text(mutated)
        findings = run_rules(paths, rules=rule).findings
        assert any(
            "Lock()" in f.message and "self._guard" in f.message for f in findings
        )

    def test_unregistered_route_is_caught(self, tmp_path):
        paths = self._copy(tmp_path, ["http.py"])
        rule = [RouteRegistryRule()]
        assert run_rules(paths, rules=rule).findings == []
        http = tmp_path / "http.py"
        source = http.read_text()
        needle = '        if path == "/v1/predict":'
        mutated = source.replace(
            needle,
            '        if path == "/v1/debug/secret":\n'
            "            return {\"GET\": lambda body: {}}\n" + needle,
            1,
        )
        assert mutated != source
        http.write_text(mutated)
        findings = run_rules(paths, rules=rule).findings
        assert any(
            "'GET /v1/debug/secret' is served by _route but missing" in f.message
            for f in findings
        )


class TestEngine:
    def test_repo_src_tree_is_clean(self):
        report = run_rules([SRC])
        assert report.findings == [], render_text(report)

    def test_pragma_suppresses_only_the_named_rule(self, tmp_path):
        victim = tmp_path / "pyproject.toml"
        victim.write_text("[project]\nname='x'\n")
        module = tmp_path / "waived.py"
        module.write_text(
            "import threading\n"
            "import time\n"
            "\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)  # lint: allow(lock-discipline)\n"
            "\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.2)  # lint: allow(some-other-rule)\n"
        )
        report = run_rules([str(module)])
        # Line 10's pragma suppresses its finding; line 14's names a rule
        # that does not exist, so the finding survives AND the bogus
        # pragma is reported as a stale waiver.
        lock_findings = [f for f in report.findings if f.rule == "lock-discipline"]
        assert [f.line for f in lock_findings] == [14]
        stale = [f for f in report.findings if f.rule == "stale-waiver"]
        assert [f.line for f in stale] == [14]
        assert "unknown rule 'some-other-rule'" in stale[0].message

    def test_stale_waiver_on_a_clean_line_is_reported(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        module = tmp_path / "waived.py"
        module.write_text(
            "def fine():\n"
            "    return 1  # lint: allow(lock-discipline)\n"
        )
        report = run_rules([str(module)])
        assert [f.rule for f in report.findings] == ["stale-waiver"]
        assert "no longer fires on this line" in report.findings[0].message
        # The waiver inventory records it as inactive.
        assert [(w.line, w.rule, w.active) for w in report.waivers] == [
            (2, "lock-discipline", False)
        ]

    def test_stale_waiver_not_reported_when_rule_did_not_run(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        module = tmp_path / "waived.py"
        module.write_text(
            "def fine():\n"
            "    return 1  # lint: allow(lock-discipline)\n"
        )
        subset = [r for r in all_rules() if r.name == "api-surface"]
        report = run_rules([str(module)], rules=subset)
        # A subset run cannot tell whether the waived rule would fire.
        assert report.findings == []

    def test_docstrings_mentioning_pragmas_are_not_waivers(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        module = tmp_path / "doc.py"
        module.write_text(
            '"""Suppress with ``# lint: allow(rule-name)`` on the line."""\n'
            "def fine():\n"
            "    return 1\n"
        )
        report = run_rules([str(module)])
        assert report.findings == []
        assert report.waivers == []

    def test_syntax_error_becomes_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        report = run_rules([str(bad)])
        assert [f.rule for f in report.findings] == ["syntax"]

    def test_json_report_schema(self):
        report = run_rules([os.path.join(FIXTURES, "bad_api_surface.py")])
        payload = render_json(report)
        assert payload["version"] == 2
        assert payload["modules"] == 1
        assert set(payload["rules"]) == {rule.name for rule in all_rules()}
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "message"}
            assert isinstance(finding["line"], int)
        for waiver in payload["waivers"]:
            assert set(waiver) == {"path", "line", "rule", "active"}
        assert set(payload["cache"]) == {
            "enabled",
            "findings_hit",
            "ast_hits",
            "ast_misses",
        }

    def test_findings_are_sorted_by_path_then_line(self):
        report = run_rules([FIXTURES])
        keys = [(f.path, f.line, f.rule) for f in report.findings]
        assert keys == sorted(keys)


class TestIncrementalCache:
    def _write_tree(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (tmp_path / "a.py").write_text("def a():\n    return 1\n")
        (tmp_path / "b.py").write_text("def b():\n    return 2\n")
        return tmp_path

    def test_warm_rerun_is_answered_from_the_findings_cache(self, tmp_path):
        tree = self._write_tree(tmp_path)
        cache = LintCache(str(tmp_path / ".cache"))
        cold = run_rules([str(tree)], cache=cache)
        assert cold.cache.enabled
        assert not cold.cache.findings_hit
        assert cold.cache.ast_misses == 2
        warm = run_rules([str(tree)], cache=cache)
        # The measurable speedup, asserted via counters: the warm run
        # never parses and never executes a rule.
        assert warm.cache.findings_hit
        assert warm.cache.ast_hits == 0 and warm.cache.ast_misses == 0
        assert render_json(warm)["findings"] == render_json(cold)["findings"]

    def test_editing_one_file_reuses_the_other_asts(self, tmp_path):
        tree = self._write_tree(tmp_path)
        cache = LintCache(str(tmp_path / ".cache"))
        run_rules([str(tree)], cache=cache)
        (tree / "a.py").write_text("def a():\n    return 99\n")
        report = run_rules([str(tree)], cache=cache)
        assert not report.cache.findings_hit
        assert report.cache.ast_hits == 1  # b.py unchanged
        assert report.cache.ast_misses == 1  # a.py re-parsed

    def test_rule_subset_keys_separately(self, tmp_path):
        tree = self._write_tree(tmp_path)
        cache = LintCache(str(tmp_path / ".cache"))
        run_rules([str(tree)], cache=cache)
        subset = [r for r in all_rules() if r.name == "api-surface"]
        report = run_rules([str(tree)], rules=subset, cache=cache)
        assert not report.cache.findings_hit

    def test_without_cache_counters_stay_disabled(self, tmp_path):
        tree = self._write_tree(tmp_path)
        report = run_rules([str(tree)])
        assert not report.cache.enabled
        assert not report.cache.findings_hit


class TestCli:
    def test_exit_one_on_findings_and_json_report_artifact(self, tmp_path, capsys):
        out = tmp_path / "report" / "lint.json"
        code = lint_main(
            [FIXTURES, "--json-report", str(out), "--cache-dir", str(tmp_path / "c")]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["version"] == 2
        assert payload["findings"]
        assert payload["cache"]["enabled"]
        assert "[lock-discipline]" in capsys.readouterr().out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        assert lint_main([SRC, "--cache-dir", str(tmp_path / "c")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_warm_cli_rerun_reports_cached(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        target = os.path.join(FIXTURES, "bad_api_surface.py")
        lint_main([target, "--cache-dir", cache_dir])
        capsys.readouterr()
        code = lint_main([target, "--cache-dir", cache_dir, "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["findings_hit"] is True

    def test_json_format_on_stdout(self, tmp_path, capsys):
        code = lint_main(
            ["--format", "json", FIXTURES, "--cache-dir", str(tmp_path / "c")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2

    def test_exit_two_on_usage_errors(self, capsys):
        assert lint_main([]) == 2
        assert lint_main(["/no/such/path.py"]) == 2
        assert lint_main(["--rule", "not-a-rule", FIXTURES]) == 2
        err = capsys.readouterr().err
        assert "no paths given" in err
        assert "no such path" in err
        assert "unknown rule" in err

    def test_rule_subset_runs_only_that_rule(self, tmp_path, capsys):
        code = lint_main(
            [
                "--rule",
                "api-surface",
                "--format",
                "json",
                FIXTURES,
                "--cache-dir",
                str(tmp_path / "c"),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == ["api-surface"]
        assert {f["rule"] for f in payload["findings"]} == {"api-surface"}

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.name in out

    def test_waivers_inventory_exits_zero(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        module = tmp_path / "waived.py"
        module.write_text(
            "import threading\n"
            "import time\n"
            "\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)  # lint: allow(lock-discipline)\n"
            "\n"
            "def fine():\n"
            "    return 1  # lint: allow(engine-purity)\n"
        )
        code = lint_main(["--waivers", "--no-cache", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "waived.py:10: allow(lock-discipline) — active" in out
        assert "waived.py:13: allow(engine-purity) — stale" in out
        assert "2 waivers (1 active, 1 stale)" in out


class TestChangedOnly:
    def _git(self, cwd, *args):
        subprocess.run(
            ["git", "-C", str(cwd), *args],
            check=True,
            capture_output=True,
            env={
                **os.environ,
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
            },
        )

    def _seed_repo(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        violation = (
            "import threading\n"
            "import time\n"
            "\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)\n"
        )
        (tmp_path / "touched.py").write_text("def fine():\n    return 1\n")
        (tmp_path / "untouched.py").write_text(violation)
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-qm", "seed")
        return violation

    def test_lints_only_the_git_diff(self, tmp_path, capsys):
        violation = self._seed_repo(tmp_path)
        # untouched.py has a finding, but only touched.py changed.
        (tmp_path / "touched.py").write_text(violation)
        code = lint_main(["--changed-only", "--no-cache", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "touched.py" in out
        assert "untouched.py" not in out

    def test_clean_checkout_lints_nothing(self, tmp_path, capsys):
        self._seed_repo(tmp_path)
        code = lint_main(["--changed-only", "--no-cache", str(tmp_path)])
        assert code == 0
        assert "0 changed files" in capsys.readouterr().out

    def test_untracked_files_count_as_changed(self, tmp_path, capsys):
        violation = self._seed_repo(tmp_path)
        (tmp_path / "fresh.py").write_text(violation)
        code = lint_main(["--changed-only", "--no-cache", str(tmp_path)])
        assert code == 1
        assert "fresh.py" in capsys.readouterr().out

    def test_outside_git_is_a_usage_error(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (tmp_path / "mod.py").write_text("def fine():\n    return 1\n")
        code = lint_main(["--changed-only", "--no-cache", str(tmp_path)])
        assert code == 2
        assert "needs a git checkout" in capsys.readouterr().err
