"""Tests for the benchmark trajectory recording hook in benchmarks/conftest.py.

The hook is driven directly with stub session objects: recording must
write the history atomically — and must not leave its flock sidecar
(``BENCH_serving.json.lock``) behind, which once littered the repo root.
"""

import importlib.util
import json
import os
import types

import pytest


def _load_bench_conftest():
    path = os.path.join(
        os.path.dirname(__file__), os.pardir, "benchmarks", "conftest.py"
    )
    spec = importlib.util.spec_from_file_location("bench_conftest_under_test", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _session_with(benchmarks):
    bench_session = types.SimpleNamespace(benchmarks=benchmarks)
    config = types.SimpleNamespace(_benchmarksession=bench_session)
    return types.SimpleNamespace(config=config)


def _bench(name, extra):
    return types.SimpleNamespace(name=name, extra_info=extra)


class TestBenchRecording:
    def test_record_written_and_lock_sidecar_removed(self, tmp_path, monkeypatch):
        record = tmp_path / "BENCH_serving.json"
        monkeypatch.setenv("REPRO_BENCH_RECORD", str(record))
        conftest = _load_bench_conftest()
        session = _session_with([_bench("test_qps", {"qps": 123.0})])

        conftest.pytest_sessionfinish(session, exitstatus=0)

        history = json.loads(record.read_text())
        assert history[-1]["benchmarks"]["test_qps"] == {"qps": 123.0}
        # The flock sidecar must not outlive the session.
        assert not (tmp_path / "BENCH_serving.json.lock").exists()
        # Neither may the atomic-write temp file.
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_serving.json"]

    def test_disabled_recording_touches_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RECORD", "")
        monkeypatch.setenv("CI", "1")  # explicit empty beats the CI default
        conftest = _load_bench_conftest()
        monkeypatch.setattr(
            conftest, "_DEFAULT_RECORD_PATH", str(tmp_path / "BENCH_serving.json")
        )
        session = _session_with([_bench("test_qps", {"qps": 1.0})])

        conftest.pytest_sessionfinish(session, exitstatus=0)

        assert list(tmp_path.iterdir()) == []

    def test_rerun_replaces_the_same_commit_record(self, tmp_path, monkeypatch):
        record = tmp_path / "BENCH_serving.json"
        monkeypatch.setenv("REPRO_BENCH_RECORD", str(record))
        conftest = _load_bench_conftest()
        monkeypatch.setattr(conftest, "_git_commit", lambda: "deadbeef")

        conftest.pytest_sessionfinish(
            _session_with([_bench("test_qps", {"qps": 1.0})]), exitstatus=0
        )
        conftest.pytest_sessionfinish(
            _session_with([_bench("test_qps", {"qps": 2.0})]), exitstatus=0
        )

        history = json.loads(record.read_text())
        assert len(history) == 1
        assert history[0]["benchmarks"]["test_qps"] == {"qps": 2.0}
        assert not (tmp_path / "BENCH_serving.json.lock").exists()
