"""Syntax/shape validation of the GitHub Actions workflow.

An ``act``-style dry run needs Docker; this is the equivalent static
check — the YAML must parse and carry the structure Actions requires
(jobs with ``runs-on`` and ``steps``, triggers on pushes and PRs, and the
tier-1 / benchmark-smoke commands this repo's ROADMAP promises).
"""

import os

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    ".github",
    "workflows",
    "ci.yml",
)


@pytest.fixture(scope="module")
def workflow():
    with open(WORKFLOW, "r", encoding="utf-8") as handle:
        return yaml.safe_load(handle)


def test_workflow_parses_with_required_top_level_keys(workflow):
    assert isinstance(workflow, dict)
    # PyYAML reads the bare `on:` key as boolean True (YAML 1.1).
    triggers = workflow.get("on", workflow.get(True))
    assert triggers is not None, "workflow must declare triggers"
    assert "push" in triggers and "pull_request" in triggers
    assert "jobs" in workflow


def test_every_job_is_runnable(workflow):
    jobs = workflow["jobs"]
    assert set(jobs) == {"tests", "bench-smoke", "lint"}
    for name, job in jobs.items():
        assert "runs-on" in job, name
        steps = job["steps"]
        assert isinstance(steps, list) and steps, name
        for step in steps:
            assert "uses" in step or "run" in step, (name, step)


def test_tier1_job_runs_pytest(workflow):
    runs = [s.get("run", "") for s in workflow["jobs"]["tests"]["steps"]]
    assert any("pytest tests" in run for run in runs)
    assert any("pip install" in run for run in runs)


def test_tier1_job_runs_examples_fast(workflow):
    """The example smoke tests must run with the FAST knob set explicitly
    in the workflow, so the contract is visible from the CI config."""
    steps = workflow["jobs"]["tests"]["steps"]
    pytest_steps = [s for s in steps if "pytest tests" in s.get("run", "")]
    assert pytest_steps
    assert pytest_steps[0].get("env", {}).get("REPRO_EXAMPLE_FAST") == "1"


def test_tier1_job_uploads_the_prediction_journal(workflow):
    """examples/observe_hub.py journals the traffic it serves into
    REPRO_JOURNAL_DIR; the tests job must point that at a path it then
    uploads, so every CI run leaves one real journal to inspect."""
    steps = workflow["jobs"]["tests"]["steps"]
    pytest_steps = [s for s in steps if "pytest tests" in s.get("run", "")]
    assert pytest_steps
    journal_dir = pytest_steps[0].get("env", {}).get("REPRO_JOURNAL_DIR")
    assert journal_dir, "the pytest step must set REPRO_JOURNAL_DIR"
    uploads = [s for s in steps if "upload-artifact" in str(s.get("uses", ""))]
    assert uploads, "tests job must upload the prediction journal"
    with_block = uploads[0]["with"]
    assert with_block["path"] == journal_dir
    assert with_block.get("if-no-files-found") == "error"


def test_bench_job_uploads_the_trajectory_artifact(workflow):
    """BENCH_serving.json must be inspectable from the CI UI: the bench job
    uploads it as a build artifact (and fails loudly if it is missing)."""
    steps = workflow["jobs"]["bench-smoke"]["steps"]
    uploads = [s for s in steps if "upload-artifact" in str(s.get("uses", ""))]
    assert uploads, "bench-smoke must upload the benchmark record"
    with_block = uploads[0]["with"]
    assert with_block["path"] == "BENCH_serving.json"
    assert with_block.get("if-no-files-found") == "error"


def test_bench_job_is_scaled_down(workflow):
    job = workflow["jobs"]["bench-smoke"]
    env = job["env"]
    assert {"REPRO_BENCH_SEQUENCES", "REPRO_BENCH_FOLDS", "REPRO_BENCH_EPOCHS"} <= set(env)
    runs = [s.get("run", "") for s in job["steps"]]
    assert any("pytest benchmarks" in run for run in runs)


def test_lint_job_is_a_correctness_gate(workflow):
    """The lint job must run repro-lint over src/, benchmarks/, and
    examples/ (failing the build on any finding) and archive the JSON
    report as a build artifact."""
    steps = workflow["jobs"]["lint"]["steps"]
    runs = [s.get("run", "") for s in steps]
    lint_runs = [run for run in runs if "repro-lint" in run]
    assert lint_runs, "lint job must invoke repro-lint"
    assert any("src/" in run for run in lint_runs)
    assert any("benchmarks/" in run for run in lint_runs)
    assert any("examples/" in run for run in lint_runs)
    assert any("--json-report" in run for run in lint_runs)
    uploads = [s for s in steps if "upload-artifact" in str(s.get("uses", ""))]
    assert uploads, "lint job must upload the JSON report"
    with_block = uploads[0]["with"]
    assert with_block["path"].endswith(".json")
    assert with_block.get("if-no-files-found") == "error"
    # The report must be archived even when findings fail the lint step.
    assert uploads[0].get("if") == "always()"


def test_lint_job_asserts_a_warm_cache_hit(workflow):
    """The incremental engine must be exercised in CI: after the cold
    lint populates .repro-lint-cache/, a warm re-run must assert a
    findings-cache hit via the JSON counters (never wall clock)."""
    steps = workflow["jobs"]["lint"]["steps"]
    warm = [
        s.get("run", "")
        for s in steps
        if "repro-lint" in s.get("run", "") and "findings_hit" in s.get("run", "")
    ]
    assert warm, "lint job must re-run repro-lint and assert findings_hit"
    assert any("--format json" in run for run in warm)


def test_lint_job_runs_concurrency_suites_under_lock_check(workflow):
    """The runtime half of the gate: the serving concurrency suites run
    once with REPRO_LOCK_CHECK=1 so tracked locks validate real
    schedules every commit."""
    steps = workflow["jobs"]["lint"]["steps"]
    checked = [
        s
        for s in steps
        if s.get("env", {}).get("REPRO_LOCK_CHECK") == "1"
        and "pytest" in s.get("run", "")
    ]
    assert checked, "lint job must run pytest with REPRO_LOCK_CHECK=1"
    assert "test_concurrency" in checked[0]["run"]
    # The admission controller and calibrator hold locks on the serving
    # hot path; their suite joins the runtime-validated set.
    assert "test_costmodel" in checked[0]["run"]
    # The replica supervisor is the most lock-heavy subsystem in the repo
    # (routing lock + one mutex per worker pipe); its suite runs under the
    # validator so every failover/recycle schedule is order-checked.
    assert "test_replica" in checked[0]["run"]


def test_bench_job_asserts_cost_model_guards(workflow):
    """The ISSUE acceptance bounds (cost_model_mape <= 0.35,
    shed_overhead <= 1.05) must be asserted against the recorded
    trajectory, not only inside the benchmark process."""
    runs = [s.get("run", "") for s in workflow["jobs"]["bench-smoke"]["steps"]]
    guard_runs = [run for run in runs if "cost_model_mape" in run]
    assert guard_runs, "bench-smoke must assert the cost-model guards"
    assert any("shed_overhead" in run for run in guard_runs)
    assert any("0.35" in run for run in guard_runs)
    assert any("1.05" in run for run in guard_runs)


def test_bench_job_asserts_replica_scaling(workflow):
    """The replica pool's acceptance bound (>= 1.3x QPS at 2 replicas)
    must gate the recorded trajectory — conditional on the runner having
    two cores, because two processes on one core merely time-slice."""
    runs = [s.get("run", "") for s in workflow["jobs"]["bench-smoke"]["steps"]]
    guard_runs = [run for run in runs if "replica_scaling" in run]
    assert guard_runs, "bench-smoke must assert the replica scaling guard"
    assert any("1.3" in run for run in guard_runs)
    assert any("cores" in run for run in guard_runs)


def test_jobs_use_pip_caching(workflow):
    for name, job in workflow["jobs"].items():
        setup_steps = [
            s for s in job["steps"] if "setup-python" in str(s.get("uses", ""))
        ]
        assert setup_steps, f"{name} must set up python"
        assert setup_steps[0]["with"].get("cache") == "pip", name
