"""Tests for :mod:`repro.concurrency` — the runtime lock-order validator.

The passthrough contract (raw :mod:`threading` primitives, zero overhead
when ``REPRO_LOCK_CHECK`` is unset) matters as much as the checking
behaviour, so both modes are pinned.  The checked mode covers the seeded
lock-order inversion the static rule's fixture also carries, the
held-lock blocking guard with its ``allow_blocking`` waiver, condition
bookkeeping across ``wait()``, and a real serving component (the journal
writer) running clean under validation.
"""

import threading

import pytest

from repro.concurrency import (
    HeldLockBlockingError,
    LockOrderError,
    TrackedCondition,
    TrackedLock,
    TrackedRLock,
    declare_blocking,
    held_locks,
    lock_check_enabled,
    lock_order_graph,
    reset_lock_state,
)


@pytest.fixture()
def checked(monkeypatch):
    """Enable validation (the knob is read at construction time)."""
    monkeypatch.setenv("REPRO_LOCK_CHECK", "1")
    reset_lock_state()
    yield
    reset_lock_state()


class TestPassthrough:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_CHECK", raising=False)
        assert not lock_check_enabled()
        # The factories hand back the raw primitives — nothing wrapped,
        # nothing recorded, nothing to pay for on the hot path.
        assert isinstance(TrackedLock("x"), type(threading.Lock()))
        assert isinstance(TrackedRLock("x"), type(threading.RLock()))
        assert isinstance(TrackedCondition(name="x"), threading.Condition)

    def test_condition_over_raw_lock_shares_it(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_CHECK", raising=False)
        lock = TrackedLock("x")
        condition = TrackedCondition(lock, name="x.cond")
        with condition:
            assert lock.locked()

    def test_declare_blocking_is_free_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_CHECK", raising=False)
        with declare_blocking("anything"):
            pass


class TestLockOrder:
    def test_seeded_inversion_is_detected(self, checked):
        a = TrackedLock("seed.a")
        b = TrackedLock("seed.b")
        with a:
            with b:
                pass
        # The opposite ordering closes a cycle in the global graph: this
        # is the schedule that deadlocks under load, caught on its first
        # appearance instead of the rare hang.
        with b:
            with pytest.raises(LockOrderError, match="seed.a"):
                with a:
                    pass

    def test_inversion_detected_across_threads(self, checked):
        a = TrackedLock("thread.a")
        b = TrackedLock("thread.b")

        def forward():
            with a:
                with b:
                    pass

        worker = threading.Thread(target=forward)
        worker.start()
        worker.join()
        errors = []

        def backward():
            try:
                with b:
                    with a:
                        pass
            except LockOrderError as exc:
                errors.append(exc)

        worker = threading.Thread(target=backward)
        worker.start()
        worker.join()
        assert len(errors) == 1

    def test_consistent_order_never_raises(self, checked):
        a = TrackedLock("ok.a")
        b = TrackedLock("ok.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert lock_order_graph() == {"ok.a": ["ok.b"]}

    def test_rlock_reentrancy_is_not_an_inversion(self, checked):
        lock = TrackedRLock("re.lock")
        with lock:
            with lock:
                assert held_locks() == ["re.lock"]
        assert held_locks() == []

    def test_same_name_different_instances_are_distinct_nodes(self, checked):
        # Two batcher instances both name their condition the same way;
        # instance A under B elsewhere must not look like a cycle here.
        first = TrackedLock("instance.lock")
        second = TrackedLock("instance.lock")
        with first:
            with second:
                pass
        with first:
            with second:
                pass


class TestBlockingGuard:
    def test_blocking_under_lock_raises(self, checked):
        lock = TrackedLock("guard.lock")
        with lock:
            with pytest.raises(HeldLockBlockingError, match="guard.lock"):
                with declare_blocking("segment write"):
                    pass

    def test_blocking_without_lock_is_fine(self, checked):
        with declare_blocking("segment write"):
            pass

    def test_allow_blocking_waives_the_guard(self, checked):
        lock = TrackedLock("io.lock", allow_blocking=True)
        with lock:
            with declare_blocking("checkpoint dump"):
                pass

    def test_condition_wait_releases_the_held_entry(self, checked):
        condition = TrackedCondition(name="wait.cond")

        def poke():
            with condition:
                condition.notify_all()

        with condition:
            assert held_locks() == ["wait.cond"]
            waker = threading.Timer(0.05, poke)
            waker.start()
            # While wait() sleeps the lock is released; the blocking guard
            # in another thread must not see it as held. After wake-up the
            # bookkeeping restores it.
            condition.wait(timeout=5.0)
            assert held_locks() == ["wait.cond"]
            waker.join()
        assert held_locks() == []

    def test_two_conditions_over_one_lock_share_a_node(self, checked):
        lock = TrackedLock("journal.queue.test")
        wakeup = TrackedCondition(lock, name="wakeup")
        drained = TrackedCondition(lock, name="drained")
        with wakeup:
            assert held_locks() == ["journal.queue.test"]
        with drained:
            assert held_locks() == ["journal.queue.test"]
        assert held_locks() == []


class TestServingUnderValidation:
    def test_journal_writer_runs_clean_under_check(self, checked, tmp_path):
        from repro.serving.journal import JournalReader, JournalWriter

        writer = JournalWriter(tmp_path / "journal")
        try:
            for index in range(50):
                writer.record({"kind": "prediction", "index": index})
            writer.flush()
        finally:
            writer.close()
        records = list(JournalReader(tmp_path / "journal").records())
        assert len(records) == 50
        # The writer's two conditions share the queue lock: one node, no
        # edges, and certainly no cycle recorded by the drain loop.
        assert "journal.queue" not in lock_order_graph()
