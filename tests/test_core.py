"""Tests for the paper's pipeline components (labeling, augmentation, models)."""

import numpy as np
import pytest

from repro.core import (
    Augmenter,
    DynamicConfigurationPredictor,
    HybridModelConfig,
    HybridStaticDynamicClassifier,
    MachineDataset,
    combine_predictions,
    format_table,
    label_space_quality,
    select_label_space,
    select_sequence_shortlist,
)
from repro.core.evaluation import evaluate_label_choice
from repro.graphs import GraphEncoder
from repro.numasim import skylake
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def small_dataset():
    regions = build_suite(families=["clomp", "lulesh"], limit=10)
    return regions, MachineDataset(skylake(), regions)


class TestLabeling:
    def test_timings_cover_full_space(self, small_dataset):
        regions, dataset = small_dataset
        assert set(dataset.region_names()) == {r.name for r in regions}
        timing = dataset.timing(regions[0].name)
        assert len(timing.times) == len(dataset.space)
        assert timing.default_time > 0

    def test_best_configuration_is_minimum(self, small_dataset):
        _, dataset = small_dataset
        timing = dataset.timing(dataset.region_names()[0])
        best = timing.best_configuration()
        assert timing.times[best] == min(timing.times.values())
        assert timing.error_of(best) == 0.0

    def test_label_space_preserves_gains(self, small_dataset):
        _, dataset = small_dataset
        label_space = select_label_space(dataset, num_labels=13)
        assert label_space.num_labels <= 13
        assert dataset.default in label_space.configurations
        quality = label_space_quality(dataset, label_space)
        assert quality > 0.9  # paper: 99% for 13 labels

    def test_fewer_labels_cannot_be_better(self, small_dataset):
        _, dataset = small_dataset
        big = select_label_space(dataset, num_labels=13)
        small = select_label_space(dataset, num_labels=2)
        assert label_space_quality(dataset, small) <= label_space_quality(dataset, big) + 1e-9

    def test_labels_for_regions(self, small_dataset):
        _, dataset = small_dataset
        label_space = select_label_space(dataset, num_labels=6)
        labels = label_space.labels_for(dataset)
        assert set(labels) == set(dataset.region_names())
        assert all(0 <= v < label_space.num_labels for v in labels.values())

    def test_speedups_against_default(self, small_dataset):
        _, dataset = small_dataset
        speedups = dataset.full_exploration_speedups()
        assert all(v >= 1.0 - 1e-9 for v in speedups.values())
        assert dataset.average_full_speedup() >= 1.0

    def test_evaluate_label_choice(self, small_dataset):
        _, dataset = small_dataset
        label_space = select_label_space(dataset, num_labels=6)
        region = dataset.region_names()[0]
        best_label = label_space.best_label_for(dataset.timing(region))
        outcome = evaluate_label_choice(dataset, label_space, region, best_label)
        assert outcome["error"] == pytest.approx(0.0)
        assert outcome["speedup"] >= 1.0 - 1e-9


class TestAugmentation:
    def test_augmenter_produces_variants(self):
        regions = build_suite(families=["lulesh"], limit=3)
        augmenter = Augmenter(num_sequences=4, seed=0)
        dataset = augmenter.augment(regions)
        # one default variant + 4 sampled sequences per region
        assert len(dataset.samples) == 3 * 5
        assert set(dataset.region_names()) == {r.name for r in regions}
        assert len(dataset.samples_for_region(regions[0].name)) == 5
        assert len(dataset.samples_for_sequence("default-O2")) == 3

    def test_variants_differ_structurally(self):
        regions = build_suite(families=["nas"], limit=2)
        dataset = Augmenter(num_sequences=6, seed=1).augment(regions)
        sizes = {s.graph.num_nodes for s in dataset.samples_for_region(regions[0].name)}
        assert len(sizes) > 1

    def test_assign_labels(self):
        regions = build_suite(families=["clomp"], limit=2)
        dataset = Augmenter(num_sequences=2, seed=0).augment(regions)
        labels = {regions[0].name: 3, regions[1].name: 1}
        dataset.assign_labels(labels)
        for sample in dataset.samples:
            assert sample.label == labels[sample.region_name]
            assert sample.graph.label == labels[sample.region_name]

    def test_groups_align_with_samples(self):
        regions = build_suite(families=["clomp"], limit=2)
        dataset = Augmenter(num_sequences=2, seed=0).augment(regions)
        groups = dataset.groups()
        assert len(groups) == len(dataset.samples)
        assert set(groups) == {r.name for r in regions}


class TestDynamicModel:
    def test_dynamic_model_learns_labels(self, small_dataset):
        _, dataset = small_dataset
        label_space = select_label_space(dataset, num_labels=6)
        labels = label_space.labels_for(dataset)
        names = dataset.region_names()
        model = DynamicConfigurationPredictor()
        model.fit(dataset, labels, names)
        predictions = model.predict(dataset, names)
        accuracy = np.mean([predictions[n] == labels[n] for n in names])
        assert accuracy > 0.7  # counters are highly informative in-sample
        assert model.profiling_cost_seconds(dataset, names) > 0

    def test_predict_before_fit_raises(self, small_dataset):
        _, dataset = small_dataset
        with pytest.raises(RuntimeError):
            DynamicConfigurationPredictor().predict(dataset, dataset.region_names())


class TestHybridModel:
    def test_threshold_splits_classes(self):
        rng = np.random.default_rng(0)
        vectors = rng.random((40, 8))
        # errors correlated with the first dimension
        errors = np.where(vectors[:, 0] > 0.6, 0.4, 0.05)
        clf = HybridStaticDynamicClassifier(HybridModelConfig(use_ga_selection=False))
        clf.fit(vectors, errors)
        decisions = clf.needs_dynamic(vectors)
        assert decisions.dtype == bool
        assert 0 < decisions.sum() < len(decisions)
        assert clf.accuracy(vectors, errors) > 0.8

    def test_fallback_when_all_errors_small(self):
        rng = np.random.default_rng(1)
        vectors = rng.random((30, 6))
        errors = np.full(30, 0.01)
        errors[:9] = 0.05  # worst 30% still far below the 20% threshold
        clf = HybridStaticDynamicClassifier(HybridModelConfig(use_ga_selection=False))
        clf.fit(vectors, errors)
        decisions = clf.needs_dynamic(vectors)
        assert decisions.sum() > 0  # fallback labelling kicked in

    def test_combine_predictions(self):
        static = {"a": 1, "b": 2, "c": 3}
        dynamic = {"a": 5, "b": 6}
        decisions = {"a": True, "b": False, "c": True}
        combined = combine_predictions(static, dynamic, decisions)
        assert combined == {"a": 5, "b": 2, "c": 3}  # c profiled but no dynamic answer


class TestFlagSelectionHelpers:
    def test_shortlist_greedy(self):
        table = {
            "s1": {"r1": 1.5, "r2": 1.0, "r3": 1.0},
            "s2": {"r1": 1.0, "r2": 1.6, "r3": 1.0},
            "s3": {"r1": 1.1, "r2": 1.1, "r3": 1.1},
        }
        shortlist = select_sequence_shortlist(table, ["r1", "r2", "r3"], max_sequences=2)
        assert len(shortlist) <= 2
        assert shortlist[0] in {"s1", "s2", "s3"}

    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        assert "a" in text and "22" in text
        assert format_table([]) == "(empty)"
