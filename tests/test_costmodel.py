"""Tests for the calibrated latency cost model and its three consumers.

Covers :class:`PlanShape` feature extraction, the analytic
:class:`LatencyCostModel` (predictions + wire codec), least-squares
calibration from journalled per-stage spans (including the registry
round-trip: fit → save → load → identical predictions), deadline-aware
batch closing in both batchers, the :class:`AdmissionController` budgets,
SLO-aware shedding under burst through the full HTTP app (structured
"over-capacity" 429s with ``Retry-After``, zero 500s, co-tenant
unaffected), the capacity report (``GET /v1/capacity``), operator
quarantine ("deployment-quarantined" 503s), the nested
``batching``/``slo`` spec blocks with their legacy-knob shims, and the
``repro-serve`` CLI's machine-readable error convention.
"""

import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.engine import PlanShape, build_plan
from repro.graphs import GraphBuilder, GraphEncoder
from repro.graphs.batching import collate
from repro.core import StaticConfigurationPredictor, StaticModelConfig
from repro.serving import (
    AdmissionController,
    ArtifactError,
    ArtifactRegistry,
    BatcherWorkerPool,
    BatchingConfig,
    CalibrationError,
    CostModelCalibrator,
    DeploymentQuarantinedError,
    DeploymentSpec,
    DeploymentSpecError,
    JournalReader,
    LatencyCostModel,
    MicroBatcher,
    ModelHub,
    OverCapacityError,
    SLOConfig,
    ServingApp,
    cost_model_summary,
    deployment_spec_from_dict,
    deployment_spec_to_dict,
    estimate_capacity,
    load_cost_model,
    program_graph_to_dict,
    save_cost_model,
)
from repro.serving.costmodel import (
    COST_MODEL_FILE,
    DEFAULT_COST_MODEL_NAME,
    build_admission,
    retry_after_header,
)

NUM_LABELS = 4


def small_predictor(seed=3):
    return StaticConfigurationPredictor(
        num_labels=NUM_LABELS,
        encoder=GraphEncoder(),
        config=StaticModelConfig(
            hidden_dim=8, graph_vector_dim=8, num_rgcn_layers=1, epochs=1, seed=seed
        ),
    )


@pytest.fixture(scope="module")
def raw_graphs(small_suite):
    builder = GraphBuilder()
    return [builder.build_module(region.module) for region in small_suite][:6]


@pytest.fixture(scope="module")
def registry_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("costmodel-registry")
    registry = ArtifactRegistry(root)
    registry.save("demo", small_predictor(seed=1))
    registry.save("other", small_predictor(seed=2))
    return str(root)


def fake_encoded(nodes, relations):
    """A stand-in encoded graph: ``token_ids`` + ``relations`` mapping."""
    return SimpleNamespace(
        token_ids=np.zeros(nodes, dtype=np.int64),
        relations={
            name: np.zeros((2, edges), dtype=np.int64)
            for name, edges in relations.items()
        },
    )


def toy_model(reference=None):
    """A hand-written model with known, strictly positive coefficients."""
    return LatencyCostModel(
        plan_build=(1e-5, 2e-5, 1e-4),
        infer=(3e-5, 1e-5, 2e-4, 5e-4),
        overhead=(1e-4, 2e-4),
        reference_shape=reference or PlanShape(1, 40, 80, 3),
        meta={"mape": 0.05, "batches": 10},
    )


# --------------------------------------------------------------- PlanShape


class TestPlanShape:
    def test_of_encoded_counts_raw_directed_edges(self):
        graphs = [
            fake_encoded(5, {"cfg": 3, "data": 2}),
            fake_encoded(7, {"cfg": 4, "call": 0}),
        ]
        shape = PlanShape.of_encoded(graphs)
        assert shape.num_graphs == 2
        assert shape.num_nodes == 12
        assert shape.num_edges == 9  # zero-edge relations don't count
        assert shape.num_relations == 2  # 'call' never carried an edge

    def test_plan_shape_matches_plan_counters(self, raw_graphs):
        encoder = GraphEncoder()
        encoded = [encoder.encode(graph) for graph in raw_graphs[:3]]
        plan = build_plan(collate(encoded))
        shape = plan.shape()
        assert shape.num_graphs == plan.num_graphs
        assert shape.num_nodes == plan.num_nodes
        assert shape.num_edges > 0
        assert shape.num_relations > 0

    def test_scaled_and_dict_round_trip(self):
        shape = PlanShape(2, 10, 20, 3)
        doubled = shape.scaled(2)
        assert (doubled.num_graphs, doubled.num_nodes, doubled.num_edges) == (
            4,
            20,
            40,
        )
        assert doubled.num_relations == 3  # structural, does not scale
        assert PlanShape.from_dict(shape.to_dict()) == shape


# ------------------------------------------------------------------- model


class TestLatencyCostModel:
    def test_predictions_compose_and_grow_with_load(self):
        model = toy_model()
        small = PlanShape(1, 10, 20, 2)
        large = PlanShape(8, 80, 160, 2)
        assert model.predict_batch_latency(small) == pytest.approx(
            model.predict_plan_build(small)
            + model.predict_infer(small)
            + model.predict_overhead(small)
        )
        assert model.predict_batch_latency(large) > model.predict_batch_latency(
            small
        )
        # Fold fan-out multiplies the inference term only.
        assert model.predict_infer(small, folds=3) > model.predict_infer(small)
        assert model.predict_plan_build(small) == pytest.approx(
            10 * 1e-5 + 20 * 2e-5 + 1e-4
        )

    def test_predictions_clamp_at_zero(self):
        model = LatencyCostModel(
            plan_build=(-1.0, 0.0, 0.0),
            infer=(0.0, 0.0, 0.0, -1.0),
            overhead=(0.0, -1.0),
            reference_shape=PlanShape(1, 1, 1, 1),
        )
        assert model.predict_batch_latency(PlanShape(1, 5, 5, 1)) == 0.0

    def test_dict_round_trip(self):
        model = toy_model()
        restored = LatencyCostModel.from_dict(model.to_dict())
        assert restored.plan_build == model.plan_build
        assert restored.infer == model.infer
        assert restored.overhead == model.overhead
        assert restored.reference_shape == model.reference_shape
        assert restored.meta["mape"] == model.meta["mape"]

    def test_from_dict_rejects_bad_payloads(self):
        with pytest.raises(ValueError, match="schema"):
            LatencyCostModel.from_dict({"schema": 99})
        payload = toy_model().to_dict()
        payload["stages"]["infer"] = [1.0, 2.0]  # wrong arity
        with pytest.raises(ValueError, match="arity"):
            LatencyCostModel.from_dict(payload)


# ------------------------------------------------------------- calibration


TRUE_PLAN = (2e-6, 1e-6, 5e-5)
TRUE_INFER = (4e-6, 2e-6, 1e-4, 2e-4)
TRUE_OVERHEAD = (5e-5, 1e-4)


def synthetic_records(batches=24, folds=2, model="m", seed=0):
    """Journal records with exactly-linear stage latencies (and per-batch
    duplicate records, as the real journal writes one per request)."""
    rng = np.random.default_rng(seed)
    records = []
    for seq in range(1, batches + 1):
        graphs = int(rng.integers(1, 9))
        nodes = graphs * int(rng.integers(20, 61))
        edges = graphs * int(rng.integers(40, 121))
        plan_build = TRUE_PLAN[0] * nodes + TRUE_PLAN[1] * edges + TRUE_PLAN[2]
        infer = (
            TRUE_INFER[0] * folds * nodes
            + TRUE_INFER[1] * folds * edges
            + TRUE_INFER[2] * folds * graphs
            + TRUE_INFER[3]
        )
        overhead = TRUE_OVERHEAD[0] * graphs + TRUE_OVERHEAD[1]
        record = {
            "model": model,
            "artifact": "m@v0001",
            "cache_hit": False,
            "batch": {
                "seq": seq,
                "graphs": graphs,
                "nodes": nodes,
                "edges": edges,
                "relations": 3,
                "folds": folds,
            },
            "stages": {"plan_build_s": plan_build, "infer_s": infer},
            "latency_s": plan_build + infer + overhead,
        }
        for _ in range(graphs):  # one journal record per batched request
            records.append(dict(record))
    return records


class TestCalibration:
    def test_fit_recovers_known_coefficients(self):
        records = synthetic_records()
        model = CostModelCalibrator(min_batches=8).fit(records)
        assert model.plan_build == pytest.approx(TRUE_PLAN, rel=1e-3, abs=1e-9)
        assert model.infer == pytest.approx(TRUE_INFER, rel=1e-3, abs=1e-9)
        assert model.overhead == pytest.approx(
            TRUE_OVERHEAD, rel=1e-3, abs=1e-9
        )
        assert model.meta["mape"] <= 0.01  # exactly linear data
        assert model.meta["batches"] == 24
        probe = PlanShape(4, 120, 300, 3)
        expected = (
            TRUE_PLAN[0] * 120 + TRUE_PLAN[1] * 300 + TRUE_PLAN[2]
        ) + (
            TRUE_INFER[0] * 2 * 120
            + TRUE_INFER[1] * 2 * 300
            + TRUE_INFER[2] * 2 * 4
            + TRUE_INFER[3]
        ) + (TRUE_OVERHEAD[0] * 4 + TRUE_OVERHEAD[1])
        assert model.predict_batch_latency(probe, folds=2) == pytest.approx(
            expected, rel=0.02
        )

    def test_duplicate_records_count_once(self):
        records = synthetic_records(batches=10)
        rows = CostModelCalibrator(min_batches=2).rows(records)
        assert len(rows) == 10  # deduplicated on (model, artifact, seq)

    def test_model_filter_and_cache_hits_skipped(self):
        records = synthetic_records(batches=10, model="a")
        records += synthetic_records(batches=10, model="b", seed=1)
        records.append({"model": "a", "cache_hit": True, "latency_s": 0.1})
        calibrator = CostModelCalibrator(min_batches=2)
        assert len(calibrator.rows(records, model="a")) == 10

    def test_too_few_batches_raises(self):
        with pytest.raises(CalibrationError, match="at least 8"):
            CostModelCalibrator(min_batches=8).fit(synthetic_records(batches=3))

    def test_reference_shape_is_per_request(self):
        model = CostModelCalibrator(min_batches=2).fit(synthetic_records())
        reference = model.reference_shape
        assert reference.num_graphs == 1
        assert 20 <= reference.num_nodes <= 60
        assert 40 <= reference.num_edges <= 120


# -------------------------------------------------- registry persistence


class TestRegistryRoundTrip:
    def test_fit_save_load_identical_predictions(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        fitted = CostModelCalibrator(min_batches=8).fit(synthetic_records())
        ref = save_cost_model(registry, fitted)
        assert (ref.name, ref.version) == (DEFAULT_COST_MODEL_NAME, "v0001")

        loaded = load_cost_model(registry)
        probes = [PlanShape(1, 30, 60, 3), PlanShape(6, 200, 500, 3)]
        for probe in probes:
            for folds in (1, 3):
                assert loaded.predict_batch_latency(
                    probe, folds=folds
                ) == pytest.approx(
                    fitted.predict_batch_latency(probe, folds=folds)
                )
        assert loaded.meta["artifact"] == f"{DEFAULT_COST_MODEL_NAME}@v0001"
        assert loaded.meta["mape"] == fitted.meta["mape"]

        # A re-fit becomes the next version and "latest" tracks it.
        save_cost_model(registry, fitted)
        assert load_cost_model(registry).meta["artifact"].endswith("@v0002")
        pinned = load_cost_model(registry, version="v0001")
        assert pinned.meta["artifact"].endswith("@v0001")

    def test_load_rejects_non_cost_model_artifacts(self, registry_root):
        registry = ArtifactRegistry(registry_root)
        with pytest.raises(ArtifactError, match="not a cost-model"):
            load_cost_model(registry, "demo")

    def test_load_rejects_corrupt_payload(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        ref = save_cost_model(registry, toy_model())
        payload = f"{ref.path}/{COST_MODEL_FILE}"
        with open(payload, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(ArtifactError, match="corrupt"):
            load_cost_model(registry)

    def test_summary_shape(self):
        assert cost_model_summary(None) is None
        summary = cost_model_summary(toy_model())
        assert set(summary) == {
            "artifact",
            "mape",
            "batches",
            "fitted_unix",
            "reference_shape",
        }
        assert summary["mape"] == 0.05


# ------------------------------------------------- deadline-aware closing


class TestDeadlineClosing:
    def run_burst(self, batcher, items=16):
        sizes = []
        batcher.start()
        try:
            futures = [batcher.submit(i) for i in range(items)]
            for future in futures:
                future.result(timeout=10)
        finally:
            batcher.close()
        return sizes

    def test_microbatcher_seals_at_predicted_deadline(self):
        sizes = []

        def runner(batch):
            sizes.append(len(batch))
            return list(batch)

        batcher = MicroBatcher(
            runner,
            max_batch_size=16,
            max_wait_s=0.05,
            cost_estimator=lambda items: 0.004 * len(items),
            latency_target_s=0.01,
        )
        self_sizes = sizes
        self.run_burst(batcher)
        assert self_sizes  # something ran
        # 3 items predict 12ms > 10ms target: every sealed batch holds <= 2.
        assert max(self_sizes) <= 2
        assert batcher.telemetry()["deadline_sealed"] >= 1
        for size in self_sizes:
            assert 0.004 * size <= 0.01

    def test_microbatcher_estimator_abstains(self):
        sizes = []

        def runner(batch):
            sizes.append(len(batch))
            return list(batch)

        batcher = MicroBatcher(
            runner,
            max_batch_size=16,
            max_wait_s=0.05,
            cost_estimator=lambda items: None,  # no model bound yet
            latency_target_s=0.01,
        )
        self.run_burst(batcher)
        assert batcher.telemetry()["deadline_sealed"] == 0

    def test_pooled_batcher_seals_at_predicted_deadline(self):
        sizes = []

        def runner(batch):
            sizes.append(len(batch))
            return list(batch)

        pool = BatcherWorkerPool(workers=1)
        try:
            batcher = pool.batcher_factory(
                runner,
                max_batch_size=16,
                max_wait_s=0.05,
                cost_estimator=lambda items: 0.004 * len(items),
                latency_target_s=0.01,
            ).start()
            futures = [batcher.submit(i) for i in range(16)]
            for future in futures:
                future.result(timeout=10)
            assert max(sizes) <= 2
            assert batcher.telemetry()["deadline_sealed"] >= 1
        finally:
            pool.close()

    def test_deadline_knobs_validated(self):
        with pytest.raises(ValueError, match="latency_target_s"):
            MicroBatcher(lambda items: items, latency_target_s=0.0)


# ------------------------------------------------------ admission control


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestAdmissionController:
    def test_inflight_budget(self):
        admission = AdmissionController(max_inflight=2)
        assert admission.try_acquire()
        assert admission.try_acquire()
        assert not admission.try_acquire()
        admission.release()
        assert admission.try_acquire()
        stats = admission.stats()
        assert stats["admitted"] == 3
        assert stats["shed"] == 1
        assert stats["inflight"] == 2

    def test_token_bucket_refills_with_time(self):
        clock = FakeClock()
        admission = AdmissionController(qps_limit=10, burst=2, clock=clock)
        assert admission.try_acquire()
        assert admission.try_acquire()
        assert not admission.try_acquire()  # bucket drained
        clock.advance(0.15)  # 1.5 tokens refill at 10 QPS
        assert admission.try_acquire()
        assert not admission.try_acquire()  # the half-token doesn't admit

    def test_acquire_raises_structured_error(self):
        admission = AdmissionController(max_inflight=1, retry_after_s=0.25)
        admission.acquire()
        with pytest.raises(OverCapacityError, match="max_inflight=1") as info:
            admission.acquire()
        assert info.value.retry_after_s == 0.25
        admission.release()  # a shed consumed no slot, only the admit did
        with admission.guard(1):
            pass

    def test_guard_releases_on_error(self):
        admission = AdmissionController(max_inflight=1)
        with pytest.raises(RuntimeError, match="boom"):
            with admission.guard():
                raise RuntimeError("boom")
        assert admission.stats()["inflight"] == 0

    def test_build_admission_policies(self):
        assert build_admission(None, None) is None
        observe = SLOConfig(p95_ms=10)  # shed_policy defaults to "none"
        assert build_admission(observe, None) is None

        bare = build_admission(
            SLOConfig(shed_policy="shed"), None, max_batch_size=8
        )
        assert bare.max_inflight == 16  # fallback: 2x batch window
        assert bare.qps_limit is None

        explicit = build_admission(
            SLOConfig(max_concurrency=3, shed_policy="shed"), None
        )
        assert explicit.max_inflight == 3

        with_model = build_admission(
            SLOConfig(p95_ms=50.0, max_queue_ms=100.0, shed_policy="shed"),
            toy_model(),
            folds=1,
            max_batch_size=8,
        )
        assert with_model.qps_limit is not None
        assert with_model.qps_limit > 0

    def test_retry_after_header_rounds_up(self):
        assert retry_after_header(0.01) == "1"
        assert retry_after_header(1.2) == "2"
        assert retry_after_header(3.0) == "3"


# ---------------------------------------------------- capacity estimation


class TestEstimateCapacity:
    def test_optimal_batch_respects_target(self):
        model = toy_model()
        unbounded = estimate_capacity(model, max_batch_size=16)
        assert unbounded["optimal_batch"] == 16
        assert unbounded["within_target"] is None

        tight = estimate_capacity(
            model,
            max_batch_size=16,
            p95_target_s=model.predict_batch_latency(
                model.reference_shape.scaled(4)
            ),
        )
        assert 1 <= tight["optimal_batch"] <= 4
        assert tight["within_target"] is True
        assert tight["sustainable_qps"] == pytest.approx(
            tight["optimal_batch"] / tight["batch_s"]
        )
        # More folds cost more, so fewer requests fit under the same target.
        folded = estimate_capacity(
            model,
            folds=8,
            max_batch_size=16,
            p95_target_s=tight["p95_target_s"],
        )
        assert folded["optimal_batch"] <= tight["optimal_batch"]


# ---------------------------------------------- hub + HTTP integration


@pytest.fixture()
def slo_hub(registry_root):
    """Two co-tenant deployments: 'limited' sheds at one in flight,
    'open' has no SLO.  Caching is off so every request runs a batch."""
    hub = ModelHub(registry_root, enable_cache=False)
    hub.load(
        DeploymentSpec(
            name="limited",
            artifact="demo",
            enable_cache=False,
            batching=BatchingConfig(max_batch_size=1, max_delay_s=0.0),
            slo=SLOConfig(
                p95_ms=500.0, max_concurrency=1, shed_policy="shed"
            ),
        )
    )
    hub.load(
        DeploymentSpec(
            name="open",
            artifact="other",
            enable_cache=False,
            batching=BatchingConfig(max_delay_s=0.0),
        )
    )
    return hub


def _slow_down(predictor, delay_s):
    """Wrap the deployment's forward pass with a sleep (a slow-infer stub)."""
    original = predictor._forward_batch

    def slow(batch, size, trace):
        time.sleep(delay_s)
        return original(batch, size, trace)

    predictor._forward_batch = slow


class TestShedUnderBurst:
    def test_burst_sheds_structured_429s_without_500s(
        self, slo_hub, raw_graphs
    ):
        app = ServingApp(slo_hub)
        _slow_down(slo_hub.resolve("limited").predictor, 0.08)
        app.start()
        try:
            body = json.dumps(
                {"graph": program_graph_to_dict(raw_graphs[0])}
            ).encode("utf-8")
            statuses = []
            headers_seen = []
            lock = threading.Lock()

            def fire():
                status, payload, headers = app.handle(
                    "POST", "/v1/models/limited/predict", body
                )
                with lock:
                    statuses.append((status, payload))
                    headers_seen.append(headers)

            threads = [threading.Thread(target=fire) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            codes = [status for status, _ in statuses]
            assert 500 not in codes and 504 not in codes
            assert codes.count(200) >= 1
            shed = [
                (status, payload)
                for status, payload in statuses
                if status == 429
            ]
            assert shed  # the burst exceeded max_concurrency=1
            for status, payload in shed:
                assert payload["error"]["code"] == "over-capacity"
            retry_after = [
                headers.get("Retry-After")
                for headers, (status, _) in zip(headers_seen, statuses)
                if status == 429
            ]
            assert all(value and int(value) >= 1 for value in retry_after)

            # The co-tenant shares the hub but not the budget: its requests
            # all succeed while 'limited' is shedding.
            for graph in raw_graphs[:3]:
                status, payload, _ = app.handle(
                    "POST",
                    "/v1/models/open/predict",
                    json.dumps(
                        {"graph": program_graph_to_dict(graph)}
                    ).encode("utf-8"),
                )
                assert status == 200

            snapshot = slo_hub.resolve("limited").predictor.snapshot()
            assert snapshot["shed_requests"] == len(shed)
            assert snapshot["admission"]["shed"] >= len(shed)
        finally:
            app.stop()

    def test_batch_bodies_charge_admission(self, slo_hub, raw_graphs):
        app = ServingApp(slo_hub)
        # Unstarted app: batch bodies go straight to predict_many under
        # admission_guard(len(graphs)) — 3 graphs against max_inflight=1.
        body = json.dumps(
            {
                "graphs": [
                    program_graph_to_dict(graph) for graph in raw_graphs[:3]
                ]
            }
        ).encode("utf-8")
        status, payload, headers = app.handle(
            "POST", "/v1/models/limited/predict", body
        )
        assert status == 429
        assert payload["error"]["code"] == "over-capacity"
        assert int(headers["Retry-After"]) >= 1

    def test_hub_sync_predict_sheds(self, slo_hub, raw_graphs):
        with pytest.raises(OverCapacityError):
            slo_hub.predict_many("limited", raw_graphs[:3])
        # Within budget works (and the shed was released, not leaked).
        result = slo_hub.predict("limited", raw_graphs[0])
        assert result.label is not None


class TestCapacityReport:
    def test_report_shape_and_http_route(self, slo_hub, raw_graphs):
        fitted = CostModelCalibrator(min_batches=2).fit(synthetic_records())
        slo_hub.set_cost_model(fitted)
        app = ServingApp(slo_hub)

        status, report, _ = app.handle("GET", "/v1/capacity")
        assert status == 200
        assert set(report["models"]) == {"limited", "open"}
        limited = report["models"]["limited"]
        assert limited["slo"]["max_concurrency"] == 1
        assert limited["slo"]["shed_policy"] == "shed"
        assert limited["quarantined"] is None
        assert limited["predicted"]["sustainable_qps"] > 0
        assert limited["max_batch_size"] == 1
        open_entry = report["models"]["open"]
        assert open_entry["slo"] is None
        assert report["cost_model"]["mape"] == fitted.meta["mape"]
        assert report["total_sustainable_qps"] > 0

        status, single, _ = app.handle("GET", "/v1/models/open/capacity")
        assert status == 200
        assert list(single["models"]) == ["open"]

        status, _, headers = app.handle("HEAD", "/v1/capacity")
        assert status == 200

    def test_capacity_without_model_is_honest(self, slo_hub):
        report = slo_hub.capacity_report()
        assert report["cost_model"] is None
        assert report["total_sustainable_qps"] is None
        assert report["models"]["limited"]["predicted"] is None

    def test_reload_cost_model_from_registry(self, tmp_path):
        # A private registry: registry_root stays read-only (the CLI tests
        # below depend on it holding no cost-model artifact).
        registry = ArtifactRegistry(tmp_path)
        registry.save("demo", small_predictor(seed=1))
        fitted = CostModelCalibrator(min_batches=2).fit(synthetic_records())
        save_cost_model(registry, fitted)
        hub = ModelHub(str(tmp_path), enable_cache=False)
        hub.load(
            DeploymentSpec(name="m", artifact="demo", enable_cache=False)
        )
        loaded = hub.reload_cost_model()
        assert hub.cost_model is loaded
        assert loaded.meta["artifact"].startswith(DEFAULT_COST_MODEL_NAME)
        report = hub.capacity_report()
        assert report["models"]["m"]["predicted"]["request_s"] > 0


class TestQuarantine:
    def test_quarantine_503s_and_restores(self, slo_hub, raw_graphs):
        app = ServingApp(slo_hub)
        body = json.dumps(
            {"graph": program_graph_to_dict(raw_graphs[0])}
        ).encode("utf-8")

        status, payload, _ = app.handle(
            "POST",
            "/v1/models/open/quarantine",
            json.dumps({"quarantined": True, "reason": "bad calibration"}).encode(),
        )
        assert status == 200 and payload["quarantined"] is True

        status, payload, _ = app.handle(
            "POST", "/v1/models/open/predict", body
        )
        assert status == 503
        assert payload["error"]["code"] == "deployment-quarantined"
        assert "bad calibration" in payload["error"]["message"]
        with pytest.raises(DeploymentQuarantinedError):
            slo_hub.predict("open", raw_graphs[0])
        # Introspection still answers while fenced.
        status, _, _ = app.handle("GET", "/v1/models/open")
        assert status == 200

        status, payload, _ = app.handle(
            "POST",
            "/v1/models/open/quarantine",
            json.dumps({"quarantined": False}).encode(),
        )
        assert status == 200 and payload["quarantined"] is False
        status, _, _ = app.handle("POST", "/v1/models/open/predict", body)
        assert status == 200

    def test_quarantine_validation(self, slo_hub):
        app = ServingApp(slo_hub)
        status, payload, _ = app.handle(
            "POST",
            "/v1/models/open/quarantine",
            json.dumps({"quarantined": "yes"}).encode(),
        )
        assert status == 400
        status, payload, _ = app.handle(
            "POST",
            "/v1/models/nope/quarantine",
            json.dumps({"quarantined": True}).encode(),
        )
        assert status == 404

    def test_unload_clears_quarantine(self, registry_root):
        hub = ModelHub(registry_root, enable_cache=False)
        hub.load(DeploymentSpec(name="m", artifact="demo", enable_cache=False))
        hub.quarantine("m", "testing")
        assert hub.quarantined() == {"m": "testing"}
        hub.unload("m")
        assert hub.quarantined() == {}


class TestJournalToCapacityEndToEnd:
    def test_served_traffic_calibrates_a_model(
        self, tmp_path, registry_root, raw_graphs
    ):
        journal_dir = str(tmp_path / "journal")
        hub = ModelHub(
            registry_root, enable_cache=False, journal_dir=journal_dir
        )
        hub.load(
            DeploymentSpec(name="m", artifact="demo", enable_cache=False)
        )
        with hub:
            for graph in raw_graphs:
                hub.predict("m", graph)
        rows = JournalReader(journal_dir).calibration_rows(model="m")
        assert len(rows) == len(raw_graphs)
        for row in rows:
            assert row["graphs"] == 1.0
            assert row["nodes"] > 0 and row["edges"] > 0
            assert row["batch_latency_s"] > 0

        fitted = CostModelCalibrator(min_batches=2).fit(
            JournalReader(journal_dir), model="m"
        )
        assert fitted.meta["batches"] == len(raw_graphs)
        registry = ArtifactRegistry(tmp_path / "cm-registry")
        save_cost_model(registry, fitted)
        reloaded = load_cost_model(registry)
        probe = fitted.reference_shape.scaled(4)
        assert reloaded.predict_batch_latency(probe) == pytest.approx(
            fitted.predict_batch_latency(probe)
        )


# ------------------------------------------------ spec blocks & codecs


class TestSpecSLOBlocks:
    def test_nested_blocks_round_trip(self):
        spec = DeploymentSpec(
            name="m",
            artifact="demo",
            batching=BatchingConfig(max_batch_size=4, max_delay_s=0.01, workers=2),
            slo=SLOConfig(p95_ms=25.0, max_concurrency=8, shed_policy="shed"),
        )
        data = deployment_spec_to_dict(spec)
        assert data["batching"] == {
            "max_batch_size": 4,
            "max_delay_s": 0.01,
            "workers": 2,
        }
        assert data["slo"]["p95_ms"] == 25.0
        # The canonical wire form carries no legacy flat knobs.
        assert "max_wait_s" not in data and "batcher_workers" not in data
        assert deployment_spec_from_dict(data) == spec

    def test_legacy_flat_knobs_fold_into_batching(self):
        legacy = DeploymentSpec(
            name="m", artifact="demo", max_batch_size=4, max_wait_s=0.01
        )
        nested = DeploymentSpec(
            name="m",
            artifact="demo",
            batching=BatchingConfig(max_batch_size=4, max_delay_s=0.01),
        )
        assert legacy == nested
        assert legacy.batching == nested.batching
        # The flat mirrors keep legacy readers (service_config projection,
        # direct attribute reads) working unchanged.
        assert legacy.max_batch_size == 4
        assert legacy.service_config().max_wait_s == 0.01
        # Legacy wire payloads still decode.
        decoded = deployment_spec_from_dict(
            {"name": "m", "artifact": "demo", "max_batch_size": 4,
             "max_wait_s": 0.01}
        )
        assert decoded == nested

    def test_mixing_spellings_is_rejected(self):
        with pytest.raises(DeploymentSpecError, match="conflict"):
            DeploymentSpec(
                name="m",
                artifact="demo",
                max_batch_size=4,
                batching=BatchingConfig(),
            )

    def test_block_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchingConfig(max_batch_size=0)
        with pytest.raises(ValueError, match="shed_policy"):
            SLOConfig(shed_policy="drop")
        with pytest.raises(ValueError, match="p95_ms"):
            SLOConfig(p95_ms=-1)
        with pytest.raises(DeploymentSpecError, match="unknown field"):
            deployment_spec_from_dict(
                {"name": "m", "artifact": "a", "slo": {"p95": 10}}
            )
        with pytest.raises(DeploymentSpecError, match="'slo' must be"):
            DeploymentSpec(name="m", artifact="a", slo={"p95_ms": 10})

    def test_slo_reaches_the_frontend(self, registry_root):
        hub = ModelHub(registry_root, enable_cache=False)
        deployment = hub.load(
            DeploymentSpec(
                name="m",
                artifact="demo",
                enable_cache=False,
                slo=SLOConfig(p95_ms=40.0, shed_policy="shed"),
            )
        )
        capacity = deployment.predictor.capacity()
        assert capacity["slo"]["p95_ms"] == 40.0
        assert capacity["admission"] is not None


# ------------------------------------------------------------ CLI errors


class TestServeCLIErrors:
    def run_main(self, argv, capsys):
        from repro.serving.__main__ import main

        code = main(argv)
        err = capsys.readouterr().err.strip()
        return code, err

    def assert_json_error(self, err, expected_code):
        lines = err.splitlines()
        assert len(lines) == 1  # exactly one machine-readable line
        payload = json.loads(lines[0])
        assert payload["error"]["code"] == expected_code
        assert payload["error"]["message"]

    def test_invalid_spec_exits_2_with_json(self, tmp_path, capsys):
        code, err = self.run_main(
            ["--root", str(tmp_path), "--name", "x", "--version", "bogus"],
            capsys,
        )
        assert code == 2
        self.assert_json_error(err, "invalid-spec")

    def test_nothing_to_serve_is_invalid_config(self, tmp_path, capsys):
        code, err = self.run_main(["--root", str(tmp_path)], capsys)
        assert code == 2
        self.assert_json_error(err, "invalid-config")

    def test_missing_cost_model_is_invalid_config(self, registry_root, capsys):
        code, err = self.run_main(
            ["--root", registry_root, "--name", "demo",
             "--cost-model", "latency-cost-model"],
            capsys,
        )
        assert code == 2
        self.assert_json_error(err, "invalid-config")

    def test_slo_flags_build_specs(self, registry_root):
        from repro.serving.__main__ import build_parser, build_specs

        args = build_parser().parse_args(
            ["--root", registry_root, "--name", "demo",
             "--slo-p95-ms", "50", "--slo-max-concurrency", "4",
             "--shed-policy", "shed"]
        )
        (spec,) = build_specs(args)
        assert spec.slo == SLOConfig(
            p95_ms=50.0, max_concurrency=4, shed_policy="shed"
        )
