"""Golden tests for the stateless inference engine (:mod:`repro.engine`).

The engine's contract is *bit-for-bit* parity with the training-time
forward pass: ``StaticRGCNModel.infer`` must equal an eval-mode
``forward`` exactly, ``StackedFoldModel`` must equal every member's own
``infer`` exactly, and none of it may perturb the training path (layer
caches, gradients).  Every assertion here is ``np.array_equal`` — no
tolerances.
"""

import threading

import numpy as np
import pytest

from repro.engine import (
    ExecutionPlan,
    IncompatibleFoldsError,
    StackedFoldModel,
    build_plan,
)
from repro.gnn.model import ModelConfig, StaticRGCNModel
from repro.graphs.batching import collate
from repro.graphs.features import EncodedGraph
from repro.graphs.graph import RELATIONS

NUM_FOLDS = 4


def make_graph(rng, name, num_nodes, drop_relations=(), num_edges_factor=3):
    """A random encoded graph; ``drop_relations`` get zero edges."""
    relations = {}
    for rel in RELATIONS:
        if rel in drop_relations or num_nodes == 0:
            relations[rel] = np.zeros((2, 0), dtype=np.int64)
        else:
            relations[rel] = rng.integers(
                0, num_nodes, size=(2, num_edges_factor * num_nodes)
            ).astype(np.int64)
    return EncodedGraph(
        name=name,
        token_ids=rng.integers(0, 32, size=num_nodes).astype(np.int64),
        kind_ids=rng.integers(0, 3, size=num_nodes).astype(np.int64),
        extra_features=rng.normal(size=(num_nodes, 5)),
        relations=relations,
        label=int(rng.integers(0, 5)),
    )


def make_models(num_folds=NUM_FOLDS, pooling="mean", **overrides):
    config = dict(
        vocabulary_size=32,
        num_classes=5,
        hidden_dim=12,
        graph_vector_dim=8,
        num_rgcn_layers=2,
        num_extra_features=5,
        pooling=pooling,
    )
    config.update(overrides)
    models = [StaticRGCNModel(ModelConfig(seed=seed, **config)) for seed in range(num_folds)]
    for model in models:
        model.eval()
    return models


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def batch(rng):
    return collate(
        [
            make_graph(rng, "plain", 9),
            make_graph(rng, "empty", 0),  # zero-node graph
            make_graph(rng, "isolated", 6, drop_relations=RELATIONS),  # zero edges
            make_graph(rng, "partial", 11, drop_relations=RELATIONS[:2]),
            make_graph(rng, "tiny", 1),
        ]
    )


class TestExecutionPlan:
    def test_plan_reuses_the_batch_adjacency_cache(self, batch):
        plan_a = ExecutionPlan.from_batch(batch)
        plan_b = build_plan(batch)
        assert batch.adjacency_builds == 1  # built once, shared by both plans
        for rel in RELATIONS:
            assert plan_a.adjacency[rel] is plan_b.adjacency[rel]

    def test_plan_arrays_are_immutable(self, batch):
        plan = build_plan(batch)
        for array in (
            plan.token_ids,
            plan.extra_features,
            plan.graph_index,
            plan.segment_counts,
            plan.pool_counts,
        ):
            with pytest.raises(ValueError):
                array[...] = 0

    def test_segment_structure(self, batch):
        plan = build_plan(batch)
        assert plan.num_graphs == 5
        assert list(plan.segment_counts) == [9, 0, 6, 11, 1]
        # Zero-node graphs get a clamped divisor, exactly like GlobalPool.
        assert list(plan.pool_counts) == [9.0, 1.0, 6.0, 11.0, 1.0]

    def test_from_arrays_matches_from_batch(self, batch):
        plan = build_plan(batch)
        raw = ExecutionPlan.from_arrays(
            token_ids=batch.token_ids,
            extra_features=batch.extra_features,
            relations=batch.relations,
            graph_index=batch.graph_index,
            num_graphs=batch.num_graphs,
        )
        model = make_models(1)[0]
        logits_a, vectors_a = model.infer(plan)
        logits_b, vectors_b = model.infer(raw)
        assert np.array_equal(logits_a, logits_b)
        assert np.array_equal(vectors_a, vectors_b)


class TestSingleFoldParity:
    def test_infer_equals_eval_forward_bitwise(self, batch):
        model = make_models(1)[0]
        plan = build_plan(batch)
        logits_f, vectors_f = model.forward(batch)
        logits_i, vectors_i = model.infer(plan)
        assert np.array_equal(logits_f, logits_i)
        assert np.array_equal(vectors_f, vectors_i)

    @pytest.mark.parametrize("pooling", ["mean", "sum", "max"])
    def test_parity_across_pooling_modes(self, batch, pooling):
        model = make_models(1, pooling=pooling)[0]
        plan = build_plan(batch)
        logits_f, vectors_f = model.forward(batch)
        logits_i, vectors_i = model.infer(plan)
        assert np.array_equal(logits_f, logits_i)
        assert np.array_equal(vectors_f, vectors_i)

    def test_infer_on_zero_node_only_batch(self, rng):
        batch = collate([make_graph(rng, "void", 0)])
        model = make_models(1)[0]
        plan = build_plan(batch)
        logits_f, vectors_f = model.forward(batch)
        logits_i, vectors_i = model.infer(plan)
        assert np.array_equal(logits_f, logits_i)
        assert np.array_equal(vectors_f, vectors_i)

    def test_infer_is_eval_mode_even_when_training(self, batch):
        """Dropout must be the identity on the infer path regardless of the
        model's training flag — inference is eval-mode by definition."""
        model = make_models(1, dropout=0.5)[0]
        plan = build_plan(batch)
        expected_logits, _ = model.infer(plan)
        model.train()
        logits, _ = model.infer(plan)
        assert np.array_equal(expected_logits, logits)


class TestStackedFoldParity:
    def test_stacked_equals_per_fold_bitwise(self, batch):
        models = make_models()
        plan = build_plan(batch)
        stacked_logits, stacked_vectors = StackedFoldModel(models).infer(plan)
        assert stacked_logits.shape == (batch.num_graphs, NUM_FOLDS, 5)
        assert stacked_vectors.shape == (batch.num_graphs, NUM_FOLDS, 8)
        for fold, model in enumerate(models):
            logits, vectors = model.infer(plan)
            assert np.array_equal(stacked_logits[:, fold], logits)
            assert np.array_equal(stacked_vectors[:, fold], vectors)

    @pytest.mark.parametrize("pooling", ["mean", "sum", "max"])
    def test_stacked_parity_across_pooling_modes(self, batch, pooling):
        models = make_models(pooling=pooling)
        plan = build_plan(batch)
        stacked_logits, stacked_vectors = StackedFoldModel(models).infer(plan)
        for fold, model in enumerate(models):
            logits, vectors = model.infer(plan)
            assert np.array_equal(stacked_logits[:, fold], logits)
            assert np.array_equal(stacked_vectors[:, fold], vectors)

    def test_stacked_equals_legacy_forward_bitwise(self, batch):
        """The full chain: stacked engine == per-fold infer == eval forward."""
        models = make_models()
        plan = build_plan(batch)
        stacked_logits, stacked_vectors = StackedFoldModel(models).infer(plan)
        for fold, model in enumerate(models):
            logits, vectors = model.forward(batch)
            assert np.array_equal(stacked_logits[:, fold], logits)
            assert np.array_equal(stacked_vectors[:, fold], vectors)

    def test_stacked_on_edge_case_batches(self, rng):
        models = make_models()
        stacked = StackedFoldModel(models)
        for graphs in (
            [make_graph(rng, "void", 0)],
            [make_graph(rng, "lonely", 5, drop_relations=RELATIONS)],
            [make_graph(rng, "a", 3), make_graph(rng, "b", 0), make_graph(rng, "c", 4)],
        ):
            batch = collate(graphs)
            plan = build_plan(batch)
            stacked_logits, stacked_vectors = stacked.infer(plan)
            for fold, model in enumerate(models):
                logits, vectors = model.infer(plan)
                assert np.array_equal(stacked_logits[:, fold], logits)
                assert np.array_equal(stacked_vectors[:, fold], vectors)

    def test_stacked_is_a_frozen_snapshot(self, batch):
        models = make_models()
        plan = build_plan(batch)
        stacked = StackedFoldModel(models)
        before, _ = stacked.infer(plan)
        # Mutating a source model afterwards must not leak into the stack.
        models[0].classifier.weight.value += 1.0
        after, _ = stacked.infer(plan)
        assert np.array_equal(before, after)

    def test_single_member_stack(self, batch):
        models = make_models(1)
        plan = build_plan(batch)
        stacked_logits, stacked_vectors = StackedFoldModel(models).infer(plan)
        logits, vectors = models[0].infer(plan)
        assert np.array_equal(stacked_logits[:, 0], logits)
        assert np.array_equal(stacked_vectors[:, 0], vectors)

    def test_incompatible_members_rejected(self):
        small = make_models(1)[0]
        wide = make_models(1, hidden_dim=16)[0]
        with pytest.raises(IncompatibleFoldsError, match="hidden_dim"):
            StackedFoldModel([small, wide])
        with pytest.raises(ValueError, match="at least one"):
            StackedFoldModel([])

    def test_dropout_and_seed_may_differ(self, batch):
        """Inference-irrelevant config fields must not block stacking."""
        base = make_models(1)[0]
        other = make_models(1, dropout=0.5)[0]
        other_seeded = StaticRGCNModel(ModelConfig(seed=9, **{
            "vocabulary_size": 32, "num_classes": 5, "hidden_dim": 12,
            "graph_vector_dim": 8, "num_rgcn_layers": 2, "num_extra_features": 5,
        }))
        other_seeded.eval()
        stacked = StackedFoldModel([base, other, other_seeded])
        assert stacked.num_folds == 3


class TestTrainingPathUnchanged:
    def test_infer_does_not_disturb_pending_backward(self, batch):
        """An infer() between forward and backward must leave the training
        step's gradients bit-identical to an undisturbed run."""
        model_a = make_models(1)[0]
        model_b = make_models(1)[0]
        model_a.train()
        model_b.train()
        plan = build_plan(batch)

        loss_a, _ = model_a.loss_and_gradients(batch)
        grads_a = {p.name: p.grad.copy() for p in model_a.store}

        logits_b, _ = model_b.forward(batch)
        # Concurrent serving traffic mid-training-step: engine calls only.
        model_b.infer(plan)
        StackedFoldModel([model_b]).infer(plan)
        from repro.gnn.losses import cross_entropy

        loss_b, grad_logits = cross_entropy(logits_b, batch.labels)
        model_b.backward(grad_logits)
        grads_b = {p.name: p.grad.copy() for p in model_b.store}

        assert loss_a == loss_b
        assert set(grads_a) == set(grads_b)
        for name in grads_a:
            assert np.array_equal(grads_a[name], grads_b[name]), name

    def test_gradient_check_still_passes_after_infer(self, batch):
        """Numerical gradient of the classifier weight is unchanged whether
        or not the engine path ran in between."""
        model = make_models(1)[0]
        model.train()
        plan = build_plan(batch)
        model.infer(plan)

        param = model.classifier.weight
        model.store.zero_grad()
        loss, _ = model.loss_and_gradients(batch)
        analytic = param.grad[0, 0]
        eps = 1e-6
        original = param.value[0, 0]
        param.value[0, 0] = original + eps
        loss_hi, _ = model.loss_and_gradients(batch)
        param.value[0, 0] = original - eps
        loss_lo, _ = model.loss_and_gradients(batch)
        param.value[0, 0] = original
        numeric = (loss_hi - loss_lo) / (2 * eps)
        assert abs(analytic - numeric) < 1e-5

    def test_concurrent_infer_calls_are_consistent(self, batch):
        """The stateless path really is reentrant: many threads hammering
        one model/stack must all read bit-identical results."""
        models = make_models()
        stacked = StackedFoldModel(models)
        plan = build_plan(batch)
        expected_logits, expected_vectors = stacked.infer(plan)
        single_expected, _ = models[0].infer(plan)
        failures = []

        def worker():
            for _ in range(10):
                logits, vectors = stacked.infer(plan)
                single_logits, _ = models[0].infer(plan)
                if not (
                    np.array_equal(logits, expected_logits)
                    and np.array_equal(vectors, expected_vectors)
                    and np.array_equal(single_logits, single_expected)
                ):
                    failures.append("mismatch")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
