"""Smoke tests for the ``examples/`` scripts.

Every example is executed as a real subprocess — the same way a user runs
it — with ``REPRO_EXAMPLE_FAST=1`` shrinking the training knobs so the
whole directory stays cheap enough for tier-1.  A non-zero exit (import
error, API drift, an assertion inside the example) fails the test with the
script's output attached.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLES = sorted(
    entry for entry in os.listdir(EXAMPLES_DIR) if entry.endswith(".py")
)


def test_every_example_is_covered():
    """A new example lands in this smoke suite automatically; this guard
    only fails if the directory disappears entirely."""
    assert EXAMPLES, f"no example scripts found in {EXAMPLES_DIR}"


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_FAST"] = "1"
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} exited with {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-4000:]}\n"
        f"--- stderr ---\n{completed.stderr[-4000:]}"
    )
