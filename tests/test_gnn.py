"""Tests for the NumPy GNN stack: layers, gradients, training, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gnn import (
    Adam,
    Dropout,
    Embedding,
    GlobalPool,
    LayerNorm,
    Linear,
    ModelConfig,
    ParameterStore,
    RGCNLayer,
    ReLU,
    SGD,
    StaticRGCNModel,
    Trainer,
    TrainerConfig,
    accuracy_score,
    class_weight_vector,
    clip_gradients,
    confusion_matrix,
    cross_entropy,
    macro_f1,
    per_label_counts,
    softmax,
)
from repro.graphs import GraphEncoder, collate
from repro.graphs.features import EncodedGraph
from repro.graphs.graph import RELATIONS


def make_chain_graph(token: str, label: int, length: int, rng) -> EncodedGraph:
    vocab = GraphEncoder().vocabulary
    ids = np.full(length, vocab.index_of(token), dtype=np.int64)
    kinds = np.zeros(length, dtype=np.int64)
    extra = rng.random((length, GraphEncoder.NUM_EXTRA_FEATURES))
    relations = {r: np.zeros((2, 0), dtype=np.int64) for r in RELATIONS}
    if length > 1:
        edges = np.array([[i, i + 1] for i in range(length - 1)], dtype=np.int64).T
        relations["control"] = edges
        relations["control_rev"] = edges[::-1].copy()
    return EncodedGraph("chain", ids, kinds, extra, relations, label=label)


@pytest.fixture
def toy_graphs():
    rng = np.random.default_rng(0)
    graphs = [make_chain_graph("add", 0, int(rng.integers(4, 12)), rng) for _ in range(30)]
    graphs += [make_chain_graph("load", 1, int(rng.integers(4, 12)), rng) for _ in range(30)]
    rng.shuffle(graphs)
    return graphs


class TestLayers:
    def test_linear_forward_backward_shapes(self):
        store = ParameterStore()
        rng = np.random.default_rng(0)
        layer = Linear(store, "lin", 4, 3, rng)
        x = rng.random((5, 4))
        y = layer.forward(x)
        assert y.shape == (5, 3)
        grad = layer.backward(np.ones_like(y))
        assert grad.shape == x.shape
        assert layer.weight.grad.shape == (4, 3)

    def test_relu_masks_negative(self):
        relu = ReLU()
        out = relu.forward(np.array([-1.0, 2.0, -3.0]))
        assert out.tolist() == [0.0, 2.0, 0.0]
        grad = relu.backward(np.array([1.0, 1.0, 1.0]))
        assert grad.tolist() == [0.0, 1.0, 0.0]

    def test_dropout_eval_mode_identity(self):
        rng = np.random.default_rng(0)
        drop = Dropout(0.5, rng)
        drop.training = False
        x = rng.random((4, 4))
        assert np.array_equal(drop.forward(x), x)

    def test_layernorm_normalizes(self):
        store = ParameterStore()
        norm = LayerNorm(store, "ln", 6)
        x = np.random.default_rng(0).random((3, 6)) * 10
        y = norm.forward(x)
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(y.std(axis=-1), 1.0, atol=1e-2)

    def test_embedding_accumulates_gradient(self):
        store = ParameterStore()
        emb = Embedding(store, "emb", 10, 4, np.random.default_rng(0))
        out = emb.forward(np.array([1, 1, 2]))
        emb.backward(np.ones_like(out))
        assert emb.weight.grad[1].sum() == pytest.approx(8.0)
        assert emb.weight.grad[2].sum() == pytest.approx(4.0)
        assert emb.weight.grad[3].sum() == 0.0


class TestLossesAndMetrics:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).random((4, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_cross_entropy_gradient_numerically(self):
        rng = np.random.default_rng(0)
        logits = rng.random((3, 4))
        labels = np.array([0, 2, 1])
        loss, grad = cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                bumped = logits.copy()
                bumped[i, j] += eps
                loss_plus, _ = cross_entropy(bumped, labels)
                numeric = (loss_plus - loss) / eps
                assert numeric == pytest.approx(grad[i, j], abs=1e-4)

    def test_class_weights_inverse_frequency(self):
        weights = class_weight_vector(np.array([0, 0, 0, 1]), 2)
        assert weights[1] > weights[0]

    def test_confusion_and_per_label_counts(self):
        true = [0, 0, 1, 2]
        pred = [0, 1, 1, 1]
        matrix = confusion_matrix(true, pred, 3)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        counts = per_label_counts(true, pred, 3)
        assert counts["oracle"].tolist() == [2, 1, 1]
        assert counts["predicted"].tolist() == [1, 3, 0]
        assert counts["correct"].tolist() == [1, 1, 0]
        assert accuracy_score(true, pred) == pytest.approx(0.5)
        assert 0.0 <= macro_f1(true, pred, 3) <= 1.0


class TestOptimizers:
    def test_sgd_reduces_quadratic(self):
        store = ParameterStore()
        param = store.create("w", np.array([5.0]))
        opt = SGD(store, learning_rate=0.1)
        for _ in range(100):
            store.zero_grad()
            param.grad[:] = 2 * param.value
            opt.step()
        assert abs(param.value[0]) < 1e-3

    def test_adam_reduces_quadratic(self):
        store = ParameterStore()
        param = store.create("w", np.array([5.0]))
        opt = Adam(store, learning_rate=0.2)
        for _ in range(200):
            store.zero_grad()
            param.grad[:] = 2 * param.value
            opt.step()
        assert abs(param.value[0]) < 1e-2

    def test_gradient_clipping(self):
        store = ParameterStore()
        param = store.create("w", np.zeros(4))
        param.grad[:] = 10.0
        norm = clip_gradients(store, max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)


class TestRGCN:
    def test_isolated_nodes_only_get_self_message(self):
        store = ParameterStore()
        rng = np.random.default_rng(0)
        layer = RGCNLayer(store, "r", 3, 3, ["control"], rng, bias=False)
        x = rng.random((4, 3))
        out = layer.forward(x, {"control": None})
        assert np.allclose(out, x @ layer.self_weight.value)

    def test_model_gradients_match_numerical(self, toy_graphs):
        config = ModelConfig(
            vocabulary_size=len(GraphEncoder().vocabulary),
            num_classes=2,
            hidden_dim=4,
            graph_vector_dim=4,
            num_rgcn_layers=1,
            num_extra_features=GraphEncoder.NUM_EXTRA_FEATURES,
            seed=3,
        )
        model = StaticRGCNModel(config)
        batch = collate(toy_graphs[:5])

        def loss_value():
            logits, _ = model.forward(batch)
            loss, _ = cross_entropy(logits, batch.labels)
            return loss

        model.store.zero_grad()
        logits, _ = model.forward(batch)
        _, grad = cross_entropy(logits, batch.labels)
        model.backward(grad)
        eps = 1e-6
        checked = 0
        for param in list(model.store)[:6]:
            flat = param.value.ravel()
            index = flat.size // 2
            original = flat[index]
            flat[index] = original + eps
            loss_plus = loss_value()
            flat[index] = original - eps
            loss_minus = loss_value()
            flat[index] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            analytic = param.grad.ravel()[index]
            assert numeric == pytest.approx(analytic, abs=1e-4)
            checked += 1
        assert checked == 6


class TestPooling:
    @pytest.mark.parametrize("mode", ["mean", "sum", "max"])
    def test_pooling_shapes_and_backward(self, mode):
        pool = GlobalPool(mode)
        x = np.arange(12, dtype=float).reshape(6, 2)
        graph_index = np.array([0, 0, 0, 1, 1, 1])
        pooled = pool.forward(x, graph_index, 2)
        assert pooled.shape == (2, 2)
        grad = pool.backward(np.ones((2, 2)))
        assert grad.shape == x.shape

    def test_mean_pool_values(self):
        pool = GlobalPool("mean")
        x = np.array([[2.0], [4.0], [10.0]])
        pooled = pool.forward(x, np.array([0, 0, 1]), 2)
        assert pooled[0, 0] == pytest.approx(3.0)
        assert pooled[1, 0] == pytest.approx(10.0)


class TestTraining:
    def test_trainer_learns_toy_task(self, toy_graphs):
        config = ModelConfig(
            vocabulary_size=len(GraphEncoder().vocabulary),
            num_classes=2,
            hidden_dim=16,
            graph_vector_dim=16,
            num_rgcn_layers=2,
            num_extra_features=GraphEncoder.NUM_EXTRA_FEATURES,
            seed=0,
        )
        trainer = Trainer(
            StaticRGCNModel(config),
            TrainerConfig(epochs=12, batch_size=16, learning_rate=5e-3),
        )
        train, val = toy_graphs[:45], toy_graphs[45:]
        history = trainer.fit(train, val)
        assert history.epochs >= 1
        assert trainer.evaluate(val) >= 0.9
        vectors = trainer.graph_vectors(val)
        assert vectors.shape == (len(val), 16)
        probabilities = trainer.predict_proba(val)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_training_requires_labels(self, toy_graphs):
        graphs = [make_chain_graph("add", -1, 5, np.random.default_rng(0))]
        graphs[0].label = None
        config = ModelConfig(
            vocabulary_size=len(GraphEncoder().vocabulary),
            num_classes=2,
            hidden_dim=4,
            graph_vector_dim=4,
            num_rgcn_layers=1,
            num_extra_features=GraphEncoder.NUM_EXTRA_FEATURES,
        )
        trainer = Trainer(StaticRGCNModel(config), TrainerConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(graphs)

    def test_state_dict_round_trip(self, toy_graphs):
        config = ModelConfig(
            vocabulary_size=len(GraphEncoder().vocabulary),
            num_classes=2,
            hidden_dim=8,
            graph_vector_dim=8,
            num_rgcn_layers=1,
            num_extra_features=GraphEncoder.NUM_EXTRA_FEATURES,
        )
        model_a = StaticRGCNModel(config)
        model_b = StaticRGCNModel(config)
        model_b.load_state_dict(model_a.state_dict())
        batch = collate(toy_graphs[:4])
        logits_a, _ = model_a.forward(batch)
        logits_b, _ = model_b.forward(batch)
        assert np.allclose(logits_a, logits_b)

    def test_save_npz_round_trip_bit_identical(self, toy_graphs, tmp_path):
        config = ModelConfig(
            vocabulary_size=len(GraphEncoder().vocabulary),
            num_classes=3,
            hidden_dim=8,
            graph_vector_dim=8,
            num_rgcn_layers=2,
            num_extra_features=GraphEncoder.NUM_EXTRA_FEATURES,
            seed=11,
        )
        model = StaticRGCNModel(config)
        model.eval()
        path = tmp_path / "model.npz"
        model.save_npz(path)

        reloaded = StaticRGCNModel.load_npz(path)
        # Architecture (including the relation tuple) survives the trip.
        assert reloaded.config == config
        # Every weight is bit-identical, hence so is every prediction.
        original_state = model.state_dict()
        for name, value in reloaded.state_dict().items():
            assert np.array_equal(original_state[name], value)
        batch_a = collate(toy_graphs[:4])
        batch_b = collate(toy_graphs[:4])
        logits_a, vectors_a = model.forward(batch_a)
        logits_b, vectors_b = reloaded.forward(batch_b)
        assert np.array_equal(logits_a, logits_b)
        assert np.array_equal(vectors_a, vectors_b)

    def test_load_npz_rejects_plain_npz(self, tmp_path):
        path = tmp_path / "weights.npz"
        np.savez(path, w=np.zeros(3))
        with pytest.raises(ValueError):
            StaticRGCNModel.load_npz(path)
