"""Tests for ProGraML-style graph construction, encoding and batching."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    FLOW_CALL,
    FLOW_CONTROL,
    FLOW_DATA,
    EncodedGraph,
    GraphBuilder,
    GraphEncoder,
    fingerprint_many,
    graph_fingerprint,
    NODE_KIND_CONSTANT,
    NODE_KIND_INSTRUCTION,
    NODE_KIND_VARIABLE,
    RELATIONS,
    ProgramGraph,
    build_graph,
    collate,
    default_vocabulary,
    graph_statistics,
    instruction_token,
    iterate_minibatches,
    merge_graphs,
)
from repro.ir import parse_function
from repro.passes import apply_flag_sequence, pipeline


class TestVocabulary:
    def test_contains_all_instruction_tokens(self):
        vocab = default_vocabulary()
        for token in ("add", "load", "store", "phi", "condbr", "icmp_slt", "call_sqrt"):
            assert token in vocab

    def test_unknown_maps_to_unk(self):
        vocab = default_vocabulary()
        assert vocab.index_of("martian_opcode") == vocab.index_of("<unk>")

    def test_bijection(self):
        vocab = default_vocabulary()
        for token in vocab.tokens:
            assert vocab.token_at(vocab.index_of(token)) == token


class TestGraphConstruction:
    def test_dot_graph_structure(self, dot_module):
        graph = build_graph(dot_module)
        assert graph.validate() == []
        kinds = {node.kind for node in graph.nodes}
        assert kinds == {NODE_KIND_INSTRUCTION, NODE_KIND_VARIABLE, NODE_KIND_CONSTANT}
        counts = graph.edge_counts()
        assert counts[FLOW_CONTROL] > 0
        assert counts[FLOW_DATA] > 0

    def test_control_edges_follow_block_order(self, dot_module):
        graph = build_graph(dot_module)
        # the loop terminator has a control edge back to the loop's first inst
        control = graph.edges_of_flow(FLOW_CONTROL)
        sources = {e.source for e in control}
        assert len(control) >= len([n for n in graph.nodes if n.kind == "instruction"]) - 3
        assert sources

    def test_call_edges_connect_helper(self, region_suite):
        region = next(r for r in region_suite if r.spec.flop_chain >= 4)
        graph = GraphBuilder().build_module(region.module)
        assert graph.edge_counts()[FLOW_CALL] >= 1

    def test_instruction_token_specialization(self):
        fn = parse_function(
            """
define f64 @f(f64 %x, f64* %p) {
entry:
  %c = fcmp ogt %x, 0.5:f64
  %s = call f64 @sqrt(%x)
  %old = atomicrmw fadd f64 %p, %x
  ret %s
}
"""
        )
        tokens = [instruction_token(i) for i in fn.instructions()]
        assert "fcmp_ogt" in tokens
        assert "call_sqrt" in tokens
        assert "atomicrmw_fadd" in tokens

    def test_graph_changes_with_flag_sequence(self, region_suite):
        region = region_suite[0]
        base = GraphBuilder().build_module(region.module)
        optimized_module = apply_flag_sequence(region.module, pipeline("O3"))
        optimized = GraphBuilder().build_module(optimized_module)
        assert optimized.num_nodes != base.num_nodes or optimized.num_edges != base.num_edges

    def test_merge_graphs(self, dot_module):
        a = build_graph(dot_module)
        merged = merge_graphs([a, a])
        assert merged.num_nodes == 2 * a.num_nodes
        assert merged.num_edges == 2 * a.num_edges

    def test_to_networkx(self, dot_module):
        graph = build_graph(dot_module)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.num_nodes
        assert nx_graph.number_of_edges() == graph.num_edges

    def test_statistics(self, dot_module):
        stats = graph_statistics([build_graph(dot_module)])
        assert stats["count"] == 1
        assert stats["nodes_mean"] > 0


class TestEncoding:
    def test_encoded_shapes(self, dot_module):
        graph = build_graph(dot_module)
        encoder = GraphEncoder()
        encoded = encoder.encode(graph, label=5)
        assert encoded.token_ids.shape[0] == graph.num_nodes
        assert encoded.extra_features.shape == (graph.num_nodes, GraphEncoder.NUM_EXTRA_FEATURES)
        assert encoded.label == 5
        assert set(encoded.relations) == set(RELATIONS)

    def test_reverse_relations_mirror_forward(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        fwd = encoded.relations["data"]
        rev = encoded.relations["data_rev"]
        assert fwd.shape == rev.shape
        assert np.array_equal(fwd[0], rev[1])
        assert np.array_equal(fwd[1], rev[0])

    def test_loop_depth_feature_nonzero(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        assert encoded.extra_features[:, 0].max() >= 1.0

    def test_literal_magnitude_feature(self, region_suite):
        clomp = next(r for r in region_suite if r.family == "clomp")
        encoded = GraphEncoder().encode(build_graph(clomp.module))
        assert encoded.extra_features[:, 4].max() > 0.0


class TestBatching:
    def test_collate_offsets_edges(self, dot_module):
        encoder = GraphEncoder()
        encoded = encoder.encode(build_graph(dot_module), label=1)
        batch = collate([encoded, encoded, encoded])
        assert batch.num_graphs == 3
        assert batch.num_nodes == 3 * encoded.num_nodes
        assert batch.labels.tolist() == [1, 1, 1]
        # Edge indices of the last graph must be offset into the last block.
        data_edges = batch.relations["data"]
        assert data_edges.max() < batch.num_nodes
        assert data_edges.max() >= 2 * encoded.num_nodes

    def test_collate_empty_rejected(self):
        with pytest.raises(ValueError):
            collate([])

    def test_normalized_adjacency_rows(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        batch = collate([encoded, encoded])
        adjacency = batch.normalized_adjacency()
        matrix = adjacency["data"]
        rows = np.asarray(matrix.sum(axis=1)).ravel()
        # Every row with incoming data edges sums to exactly 1 (mean aggregation).
        nonzero = rows[rows > 0]
        assert np.allclose(nonzero, 1.0)

    @given(st.integers(min_value=1, max_value=7))
    @settings(max_examples=10, deadline=None)
    def test_minibatches_cover_every_graph(self, batch_size):
        graph = ProgramGraph("tiny")
        node = graph.add_node(NODE_KIND_INSTRUCTION, "ret")
        encoder = GraphEncoder()
        graphs = [encoder.encode(graph, label=i % 3) for i in range(13)]
        seen = 0
        for batch in iterate_minibatches(graphs, batch_size, shuffle=True, seed=1):
            seen += batch.num_graphs
        assert seen == len(graphs)


def _zero_node_graph(name: str = "empty") -> EncodedGraph:
    return EncodedGraph(
        name=name,
        token_ids=np.zeros(0, dtype=np.int64),
        kind_ids=np.zeros(0, dtype=np.int64),
        extra_features=np.zeros((0, GraphEncoder.NUM_EXTRA_FEATURES)),
        relations={},
    )


class TestBatchingEdgeCases:
    def test_adjacency_cache_hit_across_repeated_calls(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        batch = collate([encoded, encoded])
        first = batch.normalized_adjacency()
        second = batch.normalized_adjacency()
        third = batch.normalized_adjacency()
        # Same object every time, and the sparse matrices were built exactly once.
        assert first is second is third
        assert batch.adjacency_builds == 1

    def test_adjacency_cache_hit_across_model_forwards(self, dot_module):
        from repro.gnn import ModelConfig, StaticRGCNModel

        encoder = GraphEncoder()
        encoded = encoder.encode(build_graph(dot_module))
        batch = collate([encoded])
        model = StaticRGCNModel(
            ModelConfig(
                vocabulary_size=len(encoder.vocabulary),
                num_classes=2,
                hidden_dim=4,
                graph_vector_dim=4,
                num_rgcn_layers=2,
                num_extra_features=GraphEncoder.NUM_EXTRA_FEATURES,
            )
        )
        model.eval()
        logits_a, _ = model.forward(batch)
        logits_b, _ = model.forward(batch)
        assert np.array_equal(logits_a, logits_b)
        assert batch.adjacency_builds == 1

    def test_invalidate_adjacency_cache_rebuilds(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        batch = collate([encoded])
        batch.normalized_adjacency()
        batch.invalidate_adjacency_cache()
        batch.normalized_adjacency()
        assert batch.adjacency_builds == 2

    def test_single_graph_fast_path_matches_generic(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module), label=3)
        single = collate([encoded])
        # Compare against the generic path's layout via a two-graph batch's
        # first block: identical node arrays and un-offset edges.
        double = collate([encoded, encoded])
        assert single.num_graphs == 1
        assert single.names == [encoded.name]
        assert single.labels.tolist() == [3]
        assert np.array_equal(single.token_ids, encoded.token_ids)
        assert np.array_equal(single.graph_index, np.zeros(encoded.num_nodes, dtype=np.int64))
        for rel in RELATIONS:
            n_single = single.relations[rel].shape[1]
            assert single.relations[rel].shape[0] == 2
            # First half of the doubled batch's edges equals the single batch.
            assert np.array_equal(
                double.relations[rel][:, :n_single], single.relations[rel]
            )

    def test_single_graph_forward_equals_batched_row(self, dot_module):
        from repro.gnn import ModelConfig, StaticRGCNModel

        encoder = GraphEncoder()
        encoded = encoder.encode(build_graph(dot_module))
        model = StaticRGCNModel(
            ModelConfig(
                vocabulary_size=len(encoder.vocabulary),
                num_classes=3,
                hidden_dim=6,
                graph_vector_dim=6,
                num_rgcn_layers=1,
                num_extra_features=GraphEncoder.NUM_EXTRA_FEATURES,
            )
        )
        model.eval()
        single_logits, _ = model.forward(collate([encoded]))
        batched_logits, _ = model.forward(collate([encoded, encoded]))
        assert np.allclose(single_logits[0], batched_logits[0])
        assert np.allclose(single_logits[0], batched_logits[1])

    def test_single_graph_fast_path_shares_read_only(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        single = collate([encoded])
        # Shared views must refuse in-place writes so the source encoded
        # graph (and its fingerprint) cannot be corrupted through the batch.
        with pytest.raises(ValueError):
            single.token_ids[0] = 0
        with pytest.raises(ValueError):
            single.extra_features[0, 0] = 1.0
        # ... while the source graph itself stays writable.
        encoded.token_ids[0] = encoded.token_ids[0]

    def test_zero_node_graph_in_batch(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        batch = collate([_zero_node_graph(), encoded])
        assert batch.num_graphs == 2
        assert batch.num_nodes == encoded.num_nodes
        adjacency = batch.normalized_adjacency()
        assert set(adjacency) == set(RELATIONS)

    def test_single_zero_node_graph(self):
        batch = collate([_zero_node_graph()])
        assert batch.num_graphs == 1
        assert batch.num_nodes == 0
        # Zero-edge (indeed zero-node) relations must not crash: every
        # relation normalises to "no adjacency".
        adjacency = batch.normalized_adjacency()
        assert all(matrix is None for matrix in adjacency.values())

    def test_zero_edge_relations_normalize_to_none(self):
        graph = EncodedGraph(
            name="edgeless",
            token_ids=np.array([1, 2], dtype=np.int64),
            kind_ids=np.zeros(2, dtype=np.int64),
            extra_features=np.zeros((2, GraphEncoder.NUM_EXTRA_FEATURES)),
            relations={rel: np.zeros((2, 0), dtype=np.int64) for rel in RELATIONS},
        )
        batch = collate([graph])
        adjacency = batch.normalized_adjacency()
        assert all(matrix is None for matrix in adjacency.values())

    def test_collate_empty_raises_value_error(self):
        with pytest.raises(ValueError, match="empty"):
            collate([])

    def test_iterate_minibatches_empty_dataset_yields_nothing(self):
        assert list(iterate_minibatches([], batch_size=4, shuffle=False)) == []

    def test_batch_repr_and_eq_are_safe(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        batch_a = collate([encoded])
        batch_b = collate([encoded, encoded])
        batch_a.normalized_adjacency()
        # repr must not dump the adjacency cache; eq on differently sized
        # batches must not raise a broadcast error (identity semantics).
        assert "_adjacency_cache" not in repr(batch_a)
        assert (batch_a == batch_b) is False
        assert (batch_a == batch_a) is True


class TestFingerprint:
    def test_same_region_encoded_twice_is_identical(self, small_suite):
        builder = GraphBuilder()
        region = small_suite[0]
        encoded_a = GraphEncoder().encode(builder.build_module(region.module))
        encoded_b = GraphEncoder().encode(builder.build_module(region.module))
        assert graph_fingerprint(encoded_a) == graph_fingerprint(encoded_b)

    def test_stable_across_vocabulary_reload(self, small_suite):
        builder = GraphBuilder()
        region = small_suite[1]
        # Two independent encoders (fresh vocabulary objects) must agree.
        encoder_a, encoder_b = GraphEncoder(), GraphEncoder()
        assert encoder_a.vocabulary is not encoder_b.vocabulary
        fp_a = graph_fingerprint(encoder_a.encode(builder.build_module(region.module)))
        fp_b = graph_fingerprint(encoder_b.encode(builder.build_module(region.module)))
        assert fp_a == fp_b

    def test_distinct_regions_do_not_collide(self, small_suite):
        builder = GraphBuilder()
        encoder = GraphEncoder()
        encoded = [
            encoder.encode(builder.build_module(region.module))
            for region in small_suite
        ]
        fingerprints = fingerprint_many(encoded)
        assert len(set(fingerprints)) == len(small_suite)

    def test_missing_and_empty_relations_hash_identically(self):
        base = dict(
            token_ids=np.array([1, 2], dtype=np.int64),
            kind_ids=np.zeros(2, dtype=np.int64),
            extra_features=np.zeros((2, GraphEncoder.NUM_EXTRA_FEATURES)),
        )
        absent = EncodedGraph(name="a", relations={}, **base)
        empty = EncodedGraph(
            name="b",
            relations={rel: np.zeros((2, 0), dtype=np.int64) for rel in RELATIONS},
            **base,
        )
        # Both feed the model identically, so they must share a fingerprint.
        assert graph_fingerprint(absent) == graph_fingerprint(empty)

    def test_label_and_metadata_do_not_affect_fingerprint(self, dot_module):
        encoder = GraphEncoder()
        encoded_a = encoder.encode(build_graph(dot_module))
        encoded_b = encoder.encode(build_graph(dot_module), label=5)
        encoded_b.metadata = {"anything": "else"}
        encoded_b.name = "renamed"
        assert graph_fingerprint(encoded_a) == graph_fingerprint(encoded_b)

    def test_structure_changes_change_fingerprint(self, dot_module):
        encoder = GraphEncoder()
        encoded = encoder.encode(build_graph(dot_module))
        baseline = graph_fingerprint(encoded)
        mutated_tokens = EncodedGraph(
            name=encoded.name,
            token_ids=encoded.token_ids.copy(),
            kind_ids=encoded.kind_ids,
            extra_features=encoded.extra_features,
            relations=encoded.relations,
        )
        mutated_tokens.token_ids[0] += 1
        assert graph_fingerprint(mutated_tokens) != baseline
        mutated_edges = EncodedGraph(
            name=encoded.name,
            token_ids=encoded.token_ids,
            kind_ids=encoded.kind_ids,
            extra_features=encoded.extra_features,
            relations={**encoded.relations, "control": np.zeros((2, 0), dtype=np.int64)},
        )
        assert graph_fingerprint(mutated_edges) != baseline
