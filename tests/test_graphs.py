"""Tests for ProGraML-style graph construction, encoding and batching."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    FLOW_CALL,
    FLOW_CONTROL,
    FLOW_DATA,
    GraphBuilder,
    GraphEncoder,
    NODE_KIND_CONSTANT,
    NODE_KIND_INSTRUCTION,
    NODE_KIND_VARIABLE,
    RELATIONS,
    ProgramGraph,
    build_graph,
    collate,
    default_vocabulary,
    graph_statistics,
    instruction_token,
    iterate_minibatches,
    merge_graphs,
)
from repro.ir import parse_function
from repro.passes import apply_flag_sequence, pipeline


class TestVocabulary:
    def test_contains_all_instruction_tokens(self):
        vocab = default_vocabulary()
        for token in ("add", "load", "store", "phi", "condbr", "icmp_slt", "call_sqrt"):
            assert token in vocab

    def test_unknown_maps_to_unk(self):
        vocab = default_vocabulary()
        assert vocab.index_of("martian_opcode") == vocab.index_of("<unk>")

    def test_bijection(self):
        vocab = default_vocabulary()
        for token in vocab.tokens:
            assert vocab.token_at(vocab.index_of(token)) == token


class TestGraphConstruction:
    def test_dot_graph_structure(self, dot_module):
        graph = build_graph(dot_module)
        assert graph.validate() == []
        kinds = {node.kind for node in graph.nodes}
        assert kinds == {NODE_KIND_INSTRUCTION, NODE_KIND_VARIABLE, NODE_KIND_CONSTANT}
        counts = graph.edge_counts()
        assert counts[FLOW_CONTROL] > 0
        assert counts[FLOW_DATA] > 0

    def test_control_edges_follow_block_order(self, dot_module):
        graph = build_graph(dot_module)
        # the loop terminator has a control edge back to the loop's first inst
        control = graph.edges_of_flow(FLOW_CONTROL)
        sources = {e.source for e in control}
        assert len(control) >= len([n for n in graph.nodes if n.kind == "instruction"]) - 3
        assert sources

    def test_call_edges_connect_helper(self, region_suite):
        region = next(r for r in region_suite if r.spec.flop_chain >= 4)
        graph = GraphBuilder().build_module(region.module)
        assert graph.edge_counts()[FLOW_CALL] >= 1

    def test_instruction_token_specialization(self):
        fn = parse_function(
            """
define f64 @f(f64 %x, f64* %p) {
entry:
  %c = fcmp ogt %x, 0.5:f64
  %s = call f64 @sqrt(%x)
  %old = atomicrmw fadd f64 %p, %x
  ret %s
}
"""
        )
        tokens = [instruction_token(i) for i in fn.instructions()]
        assert "fcmp_ogt" in tokens
        assert "call_sqrt" in tokens
        assert "atomicrmw_fadd" in tokens

    def test_graph_changes_with_flag_sequence(self, region_suite):
        region = region_suite[0]
        base = GraphBuilder().build_module(region.module)
        optimized_module = apply_flag_sequence(region.module, pipeline("O3"))
        optimized = GraphBuilder().build_module(optimized_module)
        assert optimized.num_nodes != base.num_nodes or optimized.num_edges != base.num_edges

    def test_merge_graphs(self, dot_module):
        a = build_graph(dot_module)
        merged = merge_graphs([a, a])
        assert merged.num_nodes == 2 * a.num_nodes
        assert merged.num_edges == 2 * a.num_edges

    def test_to_networkx(self, dot_module):
        graph = build_graph(dot_module)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.num_nodes
        assert nx_graph.number_of_edges() == graph.num_edges

    def test_statistics(self, dot_module):
        stats = graph_statistics([build_graph(dot_module)])
        assert stats["count"] == 1
        assert stats["nodes_mean"] > 0


class TestEncoding:
    def test_encoded_shapes(self, dot_module):
        graph = build_graph(dot_module)
        encoder = GraphEncoder()
        encoded = encoder.encode(graph, label=5)
        assert encoded.token_ids.shape[0] == graph.num_nodes
        assert encoded.extra_features.shape == (graph.num_nodes, GraphEncoder.NUM_EXTRA_FEATURES)
        assert encoded.label == 5
        assert set(encoded.relations) == set(RELATIONS)

    def test_reverse_relations_mirror_forward(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        fwd = encoded.relations["data"]
        rev = encoded.relations["data_rev"]
        assert fwd.shape == rev.shape
        assert np.array_equal(fwd[0], rev[1])
        assert np.array_equal(fwd[1], rev[0])

    def test_loop_depth_feature_nonzero(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        assert encoded.extra_features[:, 0].max() >= 1.0

    def test_literal_magnitude_feature(self, region_suite):
        clomp = next(r for r in region_suite if r.family == "clomp")
        encoded = GraphEncoder().encode(build_graph(clomp.module))
        assert encoded.extra_features[:, 4].max() > 0.0


class TestBatching:
    def test_collate_offsets_edges(self, dot_module):
        encoder = GraphEncoder()
        encoded = encoder.encode(build_graph(dot_module), label=1)
        batch = collate([encoded, encoded, encoded])
        assert batch.num_graphs == 3
        assert batch.num_nodes == 3 * encoded.num_nodes
        assert batch.labels.tolist() == [1, 1, 1]
        # Edge indices of the last graph must be offset into the last block.
        data_edges = batch.relations["data"]
        assert data_edges.max() < batch.num_nodes
        assert data_edges.max() >= 2 * encoded.num_nodes

    def test_collate_empty_rejected(self):
        with pytest.raises(ValueError):
            collate([])

    def test_normalized_adjacency_rows(self, dot_module):
        encoded = GraphEncoder().encode(build_graph(dot_module))
        batch = collate([encoded, encoded])
        adjacency = batch.normalized_adjacency()
        matrix = adjacency["data"]
        rows = np.asarray(matrix.sum(axis=1)).ravel()
        # Every row with incoming data edges sums to exactly 1 (mean aggregation).
        nonzero = rows[rows > 0]
        assert np.allclose(nonzero, 1.0)

    @given(st.integers(min_value=1, max_value=7))
    @settings(max_examples=10, deadline=None)
    def test_minibatches_cover_every_graph(self, batch_size):
        graph = ProgramGraph("tiny")
        node = graph.add_node(NODE_KIND_INSTRUCTION, "ret")
        encoder = GraphEncoder()
        graphs = [encoder.encode(graph, label=i % 3) for i in range(13)]
        seen = 0
        for batch in iterate_minibatches(graphs, batch_size, shuffle=True, seed=1):
            seen += batch.num_graphs
        assert seen == len(graphs)
