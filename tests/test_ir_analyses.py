"""Tests for CFG analyses, dominators, loops, the verifier and the interpreter."""

import pytest

from repro.ir import (
    BOOL,
    F64,
    I64,
    BasicBlock,
    Branch,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    Return,
    VerificationError,
    assert_valid,
    const_bool,
    const_float,
    const_int,
    parse_function,
    pointer_to,
    run_function,
    verify_function,
)
from repro.ir.cfg import back_edges, is_acyclic, predecessors_map, reachable_blocks, reverse_postorder
from repro.ir.dominators import DominatorTree
from repro.ir.interpreter import Interpreter, InterpreterError, Pointer
from repro.ir.loops import find_loops, loop_depth_map, max_loop_depth


def build_diamond():
    """if/else diamond used by CFG and dominator tests."""
    module = Module("diamond")
    fn = Function("f", FunctionType(I64, [I64]), ["x"], module)
    entry = BasicBlock("entry", fn)
    then = BasicBlock("then", fn)
    other = BasicBlock("else", fn)
    merge = BasicBlock("merge", fn)
    b = IRBuilder(entry)
    cond = b.icmp("sgt", fn.arguments[0], const_int(0), "cond")
    b.condbr(cond, then, other)
    b.position_at_end(then)
    doubled = b.mul(fn.arguments[0], const_int(2), "doubled")
    b.br(merge)
    b.position_at_end(other)
    negated = b.sub(const_int(0), fn.arguments[0], "negated")
    b.br(merge)
    b.position_at_end(merge)
    phi = b.phi(I64, "result")
    phi.add_incoming(doubled, then)
    phi.add_incoming(negated, other)
    b.ret(phi)
    return module, fn, (entry, then, other, merge)


class TestCFG:
    def test_reverse_postorder_starts_at_entry(self, dot_module):
        fn = dot_module.functions[0]
        rpo = reverse_postorder(fn)
        assert rpo[0] is fn.entry_block
        assert len(rpo) == len(fn.blocks)

    def test_predecessors(self):
        _, fn, (entry, then, other, merge) = build_diamond()
        preds = predecessors_map(fn)
        assert set(preds[merge]) == {then, other}
        assert preds[entry] == []

    def test_reachability_and_acyclic(self):
        module, fn, blocks = build_diamond()
        assert reachable_blocks(fn) == set(blocks)
        assert is_acyclic(fn)

    def test_back_edges_on_loop(self, dot_module):
        fn = dot_module.functions[0]
        edges = back_edges(fn)
        assert len(edges) == 1
        tail, head = edges[0]
        assert head.name == "loop"
        assert not is_acyclic(fn)


class TestDominators:
    def test_entry_dominates_everything(self):
        _, fn, (entry, then, other, merge) = build_diamond()
        dom = DominatorTree(fn)
        for block in fn.blocks:
            assert dom.dominates(entry, block)

    def test_branches_do_not_dominate_merge(self):
        _, fn, (entry, then, other, merge) = build_diamond()
        dom = DominatorTree(fn)
        assert not dom.dominates(then, merge)
        assert dom.immediate_dominator(merge) is entry

    def test_dominance_frontier(self):
        _, fn, (entry, then, other, merge) = build_diamond()
        dom = DominatorTree(fn)
        frontier = dom.dominance_frontier()
        assert merge in frontier[then]
        assert merge in frontier[other]


class TestLoops:
    def test_dot_loop_detected(self, dot_module):
        fn = dot_module.functions[0]
        loops = find_loops(fn)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header.name == "loop"
        assert loop.preheader() is fn.entry_block
        assert loop.induction_phi() is not None
        assert max_loop_depth(fn) == 1

    def test_constant_trip_count(self):
        fn = parse_function(
            """
define i64 @count() {
entry:
  br ^loop
loop:
  %i = phi i64 [0:i64, ^entry], [%inext, ^loop]
  %inext = add i64 %i, 1:i64
  %cond = icmp slt %inext, 8:i64
  condbr %cond, ^loop, ^done
done:
  ret %inext
}
"""
        )
        loops = find_loops(fn)
        assert loops[0].trip_count() == 8

    def test_nested_depth_in_suite(self, region_suite):
        clomp = next(r for r in region_suite if r.family == "clomp")
        depths = loop_depth_map(clomp.module.functions[-1])
        assert max(depths.values()) == 2  # outer worksharing loop + inner loop


class TestVerifier:
    def test_valid_module_passes(self, dot_module):
        assert_valid(dot_module)

    def test_missing_terminator_detected(self):
        module = Module("bad")
        fn = Function("f", FunctionType(I64, []), [], module)
        BasicBlock("entry", fn)
        errors = verify_function(fn)
        assert any("not terminated" in e for e in errors)

    def test_duplicate_names_detected(self):
        module = Module("bad")
        fn = Function("f", FunctionType(I64, []), [], module)
        block = BasicBlock("entry", fn)
        b = IRBuilder(block)
        b.add(const_int(1), const_int(2), "x")
        b.add(const_int(3), const_int(4), "x")
        b.ret(const_int(0))
        errors = verify_function(fn)
        assert any("duplicate value name" in e for e in errors)

    def test_phi_incoming_mismatch_detected(self, dot_module):
        fn = dot_module.functions[0]
        phi = fn.block_named("loop").phis()[0]
        phi.remove_incoming(fn.entry_block)
        errors = verify_function(fn)
        assert any("missing incoming" in e for e in errors)

    def test_use_before_def_detected(self):
        module = Module("bad")
        fn = Function("f", FunctionType(I64, []), [], module)
        block = BasicBlock("entry", fn)
        b = IRBuilder(block)
        first = b.add(const_int(1), const_int(2), "a")
        second = b.add(const_int(3), const_int(4), "b")
        b.ret(second)
        # Swap so that %b is used by ret but defined after... instead create a
        # use of a later-defined value explicitly.
        block.instructions[0], block.instructions[1] = block.instructions[1], block.instructions[0]
        second.operands[0] = first  # now 'b' (first in list) uses 'a' defined later
        errors = verify_function(fn)
        assert errors

    def test_assert_valid_raises(self):
        module = Module("bad")
        fn = Function("f", FunctionType(I64, []), [], module)
        BasicBlock("entry", fn)
        with pytest.raises(VerificationError):
            assert_valid(module)


class TestInterpreter:
    def test_dot_product(self, dot_module):
        result = run_function(dot_module.functions[0], [3, [1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert result == pytest.approx(32.0)

    def test_pointer_out_of_bounds(self):
        pointer = Pointer([1.0, 2.0], 5)
        with pytest.raises(InterpreterError):
            pointer.load()

    def test_diamond_paths(self):
        _, fn, _ = build_diamond()
        assert run_function(fn, [4]) == 8
        assert run_function(fn, [-3]) == 3

    def test_step_limit(self, dot_module):
        interp = Interpreter(max_steps=10)
        with pytest.raises(InterpreterError):
            interp.run(dot_module.functions[0], [10_000, [0.0] * 10_000, [0.0] * 10_000])

    def test_openmp_intrinsics(self):
        fn = parse_function(
            """
define i64 @who() {
entry:
  %tid = call i64 @omp_get_thread_num()
  %nth = call i64 @omp_get_num_threads()
  %sum = add i64 %tid, %nth
  ret %sum
}
"""
        )
        assert Interpreter(thread_id=3, num_threads=8).run(fn, []) == 11

    def test_math_externals(self):
        fn = parse_function(
            """
define f64 @hyp(f64 %x, f64 %y) {
entry:
  %xx = fmul f64 %x, %x
  %yy = fmul f64 %y, %y
  %sum = fadd f64 %xx, %yy
  %result = call f64 @sqrt(%sum)
  ret %result
}
"""
        )
        assert run_function(fn, [3.0, 4.0]) == pytest.approx(5.0)

    def test_arguments_length_checked(self, dot_module):
        with pytest.raises(InterpreterError):
            run_function(dot_module.functions[0], [1])
