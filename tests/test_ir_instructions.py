"""Tests for values, instructions and basic blocks."""

import pytest

from repro.ir import (
    BOOL,
    F64,
    I64,
    Alloca,
    AtomicRMW,
    BasicBlock,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    Function,
    FunctionType,
    GetElementPtr,
    ICmp,
    Load,
    Module,
    Phi,
    Return,
    Select,
    Store,
    Switch,
    const_bool,
    const_float,
    const_int,
    pointer_to,
)
from repro.ir.values import Argument, GlobalVariable, Undef


class TestConstants:
    def test_constant_int_wraps_to_type(self):
        c = const_int(2 ** 40, I64)
        assert c.value == 2 ** 40
        small = const_int(300, BOOL.__class__(8))
        assert -128 <= small.value <= 127

    def test_constant_equality_by_value_and_type(self):
        assert const_int(3) == const_int(3)
        assert const_int(3) != const_int(4)
        assert const_float(1.5) == const_float(1.5)
        assert const_bool(True).value == 1

    def test_undef(self):
        u = Undef(F64)
        assert u.short() == "undef"
        assert u == Undef(F64)
        assert u != Undef(I64)

    def test_global_variable_is_pointer_valued(self):
        gv = GlobalVariable(F64, "g", const_float(2.0))
        assert gv.type == pointer_to(F64)
        assert gv.short() == "@g"


class TestInstructionConstruction:
    def test_binary_op_type_follows_lhs(self):
        add = BinaryOp("add", const_int(1), const_int(2))
        assert add.type == I64
        fmul = BinaryOp("fmul", const_float(1.0), const_float(2.0))
        assert fmul.type == F64

    def test_unknown_binary_opcode_rejected(self):
        with pytest.raises(ValueError):
            BinaryOp("frobnicate", const_int(1), const_int(2))

    def test_icmp_produces_bool(self):
        cmp = ICmp("slt", const_int(1), const_int(2))
        assert cmp.type == BOOL
        with pytest.raises(ValueError):
            ICmp("nonsense", const_int(1), const_int(2))

    def test_load_requires_pointer(self):
        arg = Argument(pointer_to(F64), "p", 0)
        load = Load(arg)
        assert load.type == F64
        with pytest.raises(TypeError):
            Load(const_int(3))

    def test_store_has_void_type(self):
        arg = Argument(pointer_to(F64), "p", 0)
        store = Store(const_float(1.0), arg)
        assert store.type.is_void
        assert store.has_side_effects

    def test_gep_result_type(self):
        arg = Argument(pointer_to(F64), "p", 0)
        gep = GetElementPtr(arg, [const_int(3)])
        assert gep.type == pointer_to(F64)

    def test_alloca_returns_pointer(self):
        alloca = Alloca(F64, array_size=4)
        assert alloca.type == pointer_to(F64)
        assert alloca.array_size == 4

    def test_atomicrmw(self):
        arg = Argument(pointer_to(F64), "p", 0)
        rmw = AtomicRMW("fadd", arg, const_float(1.0))
        assert rmw.type == F64
        assert rmw.has_side_effects
        with pytest.raises(ValueError):
            AtomicRMW("frob", arg, const_float(1.0))

    def test_select_and_cast(self):
        sel = Select(const_bool(True), const_float(1.0), const_float(2.0))
        assert sel.type == F64
        cast = Cast("sitofp", const_int(3), F64)
        assert cast.type == F64
        with pytest.raises(ValueError):
            Cast("warp", const_int(3), F64)

    def test_call_return_type_defaults_to_void_for_externals(self):
        call = Call("omp_get_thread_num", [], I64)
        assert call.type == I64
        assert call.callee_name == "omp_get_thread_num"
        barrier = Call("kmpc_barrier", [])
        assert barrier.type.is_void

    def test_terminators(self):
        block_a = BasicBlock("a")
        block_b = BasicBlock("b")
        br = Branch(block_a)
        assert br.is_terminator and br.successors() == [block_a]
        cbr = CondBranch(const_bool(True), block_a, block_b)
        assert set(cbr.successors()) == {block_a, block_b}
        sw = Switch(const_int(1), block_a, [(0, block_b)])
        assert block_b in sw.successors() and block_a in sw.successors()
        assert Return(const_int(1)).successors() == []

    def test_phi_incoming_management(self):
        block_a = BasicBlock("a")
        block_b = BasicBlock("b")
        phi = Phi(I64, "x")
        phi.add_incoming(const_int(1), block_a)
        phi.add_incoming(const_int(2), block_b)
        assert phi.incoming_value_for(block_a).value == 1
        phi.remove_incoming(block_a)
        assert phi.incoming_value_for(block_a) is None
        assert len(phi.operands) == 1

    def test_replace_operand(self):
        a, b = const_int(1), const_int(2)
        add = BinaryOp("add", a, a)
        assert add.replace_operand(a, b) == 2
        assert add.lhs is b and add.rhs is b

    def test_clone_preserves_subclass_fields(self):
        cmp = ICmp("slt", const_int(1), const_int(2))
        clone = cmp.clone()
        assert isinstance(clone, ICmp)
        assert clone.predicate == "slt"
        assert clone is not cmp
        load = Load(Argument(pointer_to(F64), "p", 0), volatile=True)
        assert load.clone().is_volatile


class TestBasicBlock:
    def test_append_and_terminator(self):
        module = Module("m")
        fn = Function("f", FunctionType(F64, []), [], module)
        block = BasicBlock("entry", fn)
        assert block in fn.blocks
        ret = Return(const_float(0.0))
        block.append(ret)
        assert block.terminator is ret
        assert block.is_terminated

    def test_phis_must_lead(self):
        block = BasicBlock("b")
        phi = Phi(I64, "p")
        block.append(phi)
        block.append(Return())
        assert block.phis() == [phi]
        assert block.first_non_phi_index() == 1

    def test_insert_before_terminator(self):
        block = BasicBlock("b")
        block.append(Return())
        add = BinaryOp("add", const_int(1), const_int(2), "x")
        block.insert_before_terminator(add)
        assert block.instructions[0] is add
        assert block.instructions[-1].opcode == "ret"


class TestFunction:
    def test_static_features(self, dot_module):
        fn = dot_module.functions[0]
        features = fn.static_features()
        assert features["num_blocks"] == 3
        assert features["num_loads"] == 2
        assert features["num_loops"] == 1
        assert 0 < features["mem_ratio"] < 1

    def test_replace_all_uses(self, dot_module):
        fn = dot_module.functions[0]
        va = next(i for i in fn.instructions() if i.name == "va")
        vb = next(i for i in fn.instructions() if i.name == "vb")
        replaced = fn.replace_all_uses_with(va, vb)
        assert replaced >= 1
        assert not fn.uses_of(va)
