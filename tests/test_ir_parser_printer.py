"""Round-trip tests for the textual IR format."""

import pytest

from repro.ir import (
    Module,
    ParseError,
    assert_valid,
    parse_function,
    parse_module,
    print_module,
    run_function,
)
from repro.ir.parser import split_top_level, split_type_prefix
from repro.ir.types import F64, I64, array_of, pointer_to
from repro.workloads import build_suite


class TestLexHelpers:
    def test_split_type_prefix_simple(self):
        ty, rest = split_type_prefix("i64 %x, %y")
        assert ty == I64 and rest == "%x, %y"

    def test_split_type_prefix_pointer_and_array(self):
        ty, rest = split_type_prefix("[8 x f64]* %p")
        assert ty == pointer_to(array_of(F64, 8))
        assert rest == "%p"

    def test_split_top_level_respects_brackets(self):
        parts = split_top_level("[1:i64, ^a], [2:i64, ^b]")
        assert parts == ["[1:i64, ^a]", "[2:i64, ^b]"]

    def test_split_type_prefix_rejects_garbage(self):
        with pytest.raises(ParseError):
            split_type_prefix("%x")


class TestRoundTrip:
    def test_dot_product_round_trip(self, dot_module):
        text = print_module(dot_module)
        reparsed = parse_module(text)
        assert_valid(reparsed)
        assert print_module(reparsed) == text

    def test_round_trip_preserves_semantics(self, dot_module):
        reparsed = parse_module(print_module(dot_module))
        args = [4, [1.0, 2.0, 3.0, 4.0], [2.0, 2.0, 2.0, 2.0]]
        original = run_function(dot_module.functions[0], [4, list(args[1]), list(args[2])])
        recovered = run_function(reparsed.functions[0], [4, list(args[1]), list(args[2])])
        assert original == recovered == 20.0

    def test_whole_suite_round_trips(self, region_suite):
        for region in region_suite:
            text = print_module(region.module)
            reparsed = parse_module(text)
            assert_valid(reparsed)
            assert print_module(reparsed) == text

    def test_module_clone_is_independent(self, dot_module):
        clone = dot_module.clone()
        assert clone is not dot_module
        clone_fn = clone.functions[0]
        original_fn = dot_module.functions[0]
        assert clone_fn is not original_fn
        # Mutating the clone must not affect the original.
        clone_fn.blocks[0].instructions.clear()
        assert len(original_fn.blocks[0].instructions) == 1

    def test_globals_round_trip(self):
        text = """
@counter = global f64 0.0:f64

define void @touch(f64* %p) {
entry:
  %v = load f64 @counter
  store f64 %v, %p
  ret
}
"""
        module = parse_module(text)
        assert module.get_global("counter") is not None
        out = print_module(module)
        module2 = parse_module(out)
        assert module2.get_global("counter").value_type == F64

    def test_declare_round_trip(self):
        text = "declare f64 @sqrt(f64 %x)"
        module = parse_module(text)
        fn = module.get_function("sqrt")
        assert fn.is_declaration
        assert print_module(module).strip().endswith("declare f64 @sqrt(f64 %x)")


class TestParserErrors:
    def test_undefined_value(self):
        with pytest.raises(ParseError):
            parse_function(
                "define void @f() {\nentry:\n  store f64 %ghost, %ghost\n  ret\n}"
            )

    def test_unknown_block(self):
        with pytest.raises(ParseError):
            parse_function("define void @f() {\nentry:\n  br ^nowhere\n}")

    def test_unterminated_function(self):
        with pytest.raises(ParseError):
            parse_module("define void @f() {\nentry:\n  ret\n")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_function("define void @f() {\nentry:\n  launch %x\n}")

    def test_forward_reference_through_phi_is_allowed(self):
        text = """
define i64 @count(i64 %n) {
entry:
  br ^loop
loop:
  %i = phi i64 [0:i64, ^entry], [%inext, ^loop]
  %inext = add i64 %i, 1:i64
  %cond = icmp slt %inext, %n
  condbr %cond, ^loop, ^done
done:
  ret %inext
}
"""
        fn = parse_function(text)
        assert_valid(fn)
        assert run_function(fn, [5]) == 5
