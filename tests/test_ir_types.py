"""Tests for the IR type system."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import (
    BOOL,
    F32,
    F64,
    I32,
    I64,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    array_of,
    parse_type,
    pointer_to,
)


class TestTypeIdentity:
    def test_int_types_are_interned(self):
        assert IntType(32) is IntType(32)
        assert IntType(64) is I64

    def test_float_types_are_interned(self):
        assert FloatType(64) is F64
        assert FloatType(32) is F32

    def test_void_singleton(self):
        assert VOID.is_void
        assert VOID == parse_type("void")

    def test_int_equality_by_width(self):
        assert IntType(32) == I32
        assert IntType(32) != I64

    def test_pointer_equality_is_structural(self):
        assert pointer_to(F64) == PointerType(F64)
        assert pointer_to(F64) != pointer_to(F32)

    def test_array_equality(self):
        assert array_of(F64, 8) == ArrayType(F64, 8)
        assert array_of(F64, 8) != array_of(F64, 16)

    def test_function_type_equality(self):
        a = FunctionType(F64, [I64, pointer_to(F64)])
        b = FunctionType(F64, [I64, pointer_to(F64)])
        assert a == b
        assert hash(a) == hash(b)


class TestPredicates:
    def test_bool_is_one_bit_int(self):
        assert BOOL.is_int
        assert BOOL.is_bool
        assert not I64.is_bool

    def test_numeric_predicate(self):
        assert I64.is_numeric
        assert F64.is_numeric
        assert not VOID.is_numeric
        assert not pointer_to(F64).is_numeric

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            FloatType(16)
        with pytest.raises(ValueError):
            ArrayType(F64, -1)


class TestParseType:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("i1", BOOL),
            ("i64", I64),
            ("f64", F64),
            ("f64*", pointer_to(F64)),
            ("f64**", pointer_to(pointer_to(F64))),
            ("[8 x f64]", array_of(F64, 8)),
            ("[4 x i32]*", pointer_to(array_of(I32, 4))),
            ("void", VOID),
        ],
    )
    def test_round_trip(self, text, expected):
        parsed = parse_type(text)
        assert parsed == expected
        assert parse_type(repr(parsed)) == expected

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_type("banana")


class TestIntWrap:
    @given(st.integers(min_value=-(2 ** 70), max_value=2 ** 70))
    def test_wrap_stays_in_range(self, value):
        ty = IntType(32)
        wrapped = ty.wrap(value)
        assert ty.min_value <= wrapped <= ty.max_value

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_wrap_is_identity_in_range(self, value):
        assert IntType(32).wrap(value) == value

    @given(st.integers(), st.integers(min_value=2, max_value=64))
    def test_wrap_idempotent(self, value, bits):
        ty = IntType(bits)
        assert ty.wrap(ty.wrap(value)) == ty.wrap(value)
