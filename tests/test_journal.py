"""Tests for the prediction journal, drift detection and A/B replay.

Covers the journal file format (checksummed segment headers, rotation,
schema validation), the crash-safety contract (a torn final line is
recovered around and reported; interior corruption raises), the
asynchronous writer (bounded queue, drop counting, flush/close), the
reader's filter/group/percentile queries, the ``repro-journal`` CLI, the
windowed drift detector, and offline A/B replay of recorded graphs.
"""

import json
import os

import pytest

from repro.graphs import GraphBuilder
from repro.serving import (
    DriftConfig,
    JournalError,
    JournalReader,
    JournalWriter,
    detect_drift,
    program_graph_to_dict,
    replay_ab,
    replayable_graphs,
    total_variation,
)
from repro.serving.journal import segment_header, validate_header
from repro.serving.journal_cli import main as journal_main
from repro.workloads import build_suite


def record(i, model="m", label=None, agreement=1.0, graph=None):
    return {
        "ts": float(i),
        "model": model,
        "label": label if label is not None else i % 3,
        "agreement": agreement,
        "cache_hit": i % 2 == 0,
        "batch_size": 1,
        "latency_s": 0.001 * (i + 1),
        "stages": {"infer_s": 0.0005 * (i + 1)},
        "graph": graph,
    }


def write_journal(directory, records, **kwargs):
    with JournalWriter(str(directory), **kwargs) as writer:
        for entry in records:
            assert writer.record(entry)
        assert writer.flush()
    return JournalReader(str(directory))


# ------------------------------------------------------------- file format


def test_segments_rotate_and_carry_checksummed_headers(tmp_path):
    reader = write_journal(tmp_path, [record(i) for i in range(10)], segment_records=4)
    segments = reader.segments()
    assert len(segments) == 3  # 4 + 4 + 2
    for path in segments:
        with open(path) as handle:
            header = json.loads(handle.readline())
        validate_header(header, path)  # checksum + schema + magic all hold
    assert len(reader.records()) == 10


def test_header_tampering_is_detected(tmp_path):
    write_journal(tmp_path, [record(0)])
    reader = JournalReader(str(tmp_path))
    path = reader.segments()[0]
    with open(path) as handle:
        lines = handle.read().splitlines()
    header = json.loads(lines[0])
    header["segment"] = 999  # checksum no longer matches
    lines[0] = json.dumps(header)
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="checksum"):
        list(JournalReader(str(tmp_path)))


def test_unsupported_schema_is_refused(tmp_path):
    header = segment_header(0)
    header["schema"] = 999
    with pytest.raises(JournalError, match="schema"):
        validate_header(header, "segment-000000.jsonl")


def test_foreign_file_is_refused_but_unmatched_names_are_ignored(tmp_path):
    (tmp_path / "notes.txt").write_text("not a journal\n")
    (tmp_path / "segment-000000.jsonl").write_text('{"some": "other file"}\n')
    reader = JournalReader(str(tmp_path))
    with pytest.raises(JournalError, match="not a prediction-journal"):
        list(reader)


def test_new_writer_never_appends_to_old_segments(tmp_path):
    write_journal(tmp_path, [record(0)])
    write_journal(tmp_path, [record(1)])
    reader = JournalReader(str(tmp_path))
    assert len(reader.segments()) == 2
    assert [entry["ts"] for entry in reader] == [0.0, 1.0]


# ------------------------------------------------------------ crash safety


def test_torn_final_line_is_recovered_and_reported(tmp_path):
    """Satellite: kill a writer mid-append — the reader recovers every
    complete record and reports the torn tail instead of raising."""
    reader = write_journal(tmp_path, [record(i) for i in range(5)])
    path = reader.segments()[-1]
    with open(path, "a") as handle:
        handle.write('{"ts": 99.0, "model": "m", "lab')  # the crash signature
    recovered = JournalReader(str(tmp_path))
    records = recovered.records()
    assert [entry["ts"] for entry in records] == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert recovered.torn_tails == [path]
    # stats() surfaces the tear, so operators see it without reading files.
    assert recovered.stats()["torn_tails"] == [path]


def test_torn_header_of_a_fresh_segment_is_recovered(tmp_path):
    reader = write_journal(tmp_path, [record(0)])
    torn = os.path.join(str(tmp_path), "segment-000001.jsonl")
    with open(torn, "w") as handle:
        handle.write('{"journal": "repro-predi')  # crashed writing the header
    recovered = JournalReader(str(tmp_path))
    assert len(recovered.records()) == 1
    assert recovered.torn_tails == [torn]


def test_interior_corruption_raises_instead_of_silently_skipping(tmp_path):
    reader = write_journal(tmp_path, [record(i) for i in range(3)])
    path = reader.segments()[0]
    with open(path) as handle:
        lines = handle.read().splitlines()
    lines[2] = lines[2][:10]  # tear a middle record — not a crash signature
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt interior"):
        list(JournalReader(str(tmp_path)))


# ---------------------------------------------------------------- writer


def test_full_queue_drops_and_counts_instead_of_blocking(tmp_path):
    writer = JournalWriter(str(tmp_path), queue_capacity=1)
    # Stall the drain thread by flooding from under it: with capacity 1 at
    # least some of these rapid-fire records must be dropped, and every
    # drop is counted rather than silently lost.
    results = [writer.record(record(i)) for i in range(200)]
    writer.close()
    stats = writer.stats()
    assert stats["written"] + stats["dropped"] == 200
    assert results.count(True) == stats["written"]


def test_closed_writer_refuses_records(tmp_path):
    writer = JournalWriter(str(tmp_path))
    writer.close()
    assert not writer.record(record(0))


def test_graphs_are_wire_encoded_off_the_hot_path(tmp_path):
    suite = build_suite(families=["clomp"], limit=1)
    graph = GraphBuilder().build_module(suite[0].module)
    reader = write_journal(tmp_path, [record(0, graph=graph)])
    stored = reader.records()[0]["graph"]
    assert stored == program_graph_to_dict(graph)


def test_record_graphs_false_strips_graphs(tmp_path):
    suite = build_suite(families=["clomp"], limit=1)
    graph = GraphBuilder().build_module(suite[0].module)
    reader = write_journal(tmp_path, [record(0, graph=graph)], record_graphs=False)
    assert reader.records()[0]["graph"] is None


def test_recent_window_is_per_model_and_bounded(tmp_path):
    writer = JournalWriter(str(tmp_path), recent_window=3)
    for i in range(5):
        writer.record(record(i, model="a"))
    writer.record(record(99, model="b"))
    assert [entry["ts"] for entry in writer.recent("a")] == [2.0, 3.0, 4.0]
    assert len(writer.recent("b")) == 1
    assert writer.recent("unknown") == []
    writer.close()


# ---------------------------------------------------------------- queries


@pytest.fixture()
def populated(tmp_path):
    records = [record(i, model="a") for i in range(6)] + [
        record(i, model="b", label=5, agreement=0.4) for i in range(6, 10)
    ]
    return write_journal(tmp_path, records, segment_records=3)


def test_filtered_queries(populated):
    assert len(populated.records(model="a")) == 6
    assert len(populated.records(label=5)) == 4
    assert len(populated.records(cache_hit=True)) == 5
    assert len(populated.records(since=3.0, until=7.0)) == 5
    assert [r["ts"] for r in populated.records(model="a", limit=2)] == [4.0, 5.0]
    assert [r["ts"] for r in populated.tail(3)] == [7.0, 8.0, 9.0]


def test_group_by_and_label_distribution(populated):
    assert populated.group_by("model") == {"a": 6, "b": 4}
    distribution = populated.label_distribution()
    assert distribution[5] == pytest.approx(0.4)
    assert sum(distribution.values()) == pytest.approx(1.0)


def test_stats_percentiles_and_agreement(populated):
    stats = populated.stats()
    assert stats["records"] == 10
    assert stats["models"] == {"a": 6, "b": 4}
    assert stats["latency"]["samples"] == 10
    assert stats["latency"]["p50_s"] == pytest.approx(0.0055)
    assert stats["stages"]["infer_s"]["samples"] == 10
    assert stats["mean_agreement"] == pytest.approx((6 * 1.0 + 4 * 0.4) / 10)
    empty = populated.stats(model="nope")
    assert empty["records"] == 0
    assert empty["latency"]["p50_s"] is None


# -------------------------------------------------------------------- CLI


def test_cli_tail_stats_query(populated, capsys):
    directory = populated.directory
    assert journal_main(["tail", "--dir", directory, "-n", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert [json.loads(line)["ts"] for line in lines] == [8.0, 9.0]

    assert journal_main(["stats", "--dir", directory, "--model", "b"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["records"] == 4

    assert (
        journal_main(["query", "--dir", directory, "--label", "5", "--count"]) == 0
    )
    assert capsys.readouterr().out.strip() == "4"

    assert journal_main(["query", "--dir", directory, "--cache-miss"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert all(not json.loads(line)["cache_hit"] for line in lines)


def test_cli_reports_torn_tail_on_stderr(populated, capsys):
    path = populated.segments()[-1]
    with open(path, "a") as handle:
        handle.write('{"torn')
    assert journal_main(["stats", "--dir", populated.directory]) == 0
    captured = capsys.readouterr()
    assert "torn final line" in captured.err


def test_cli_errors_on_missing_directory(tmp_path, capsys):
    assert journal_main(["stats", "--dir", str(tmp_path / "nope")]) == 2
    error = json.loads(capsys.readouterr().err)["error"]
    assert error["code"] == "no-journal"
    assert "nope" in error["message"]


def test_cli_errors_on_corrupt_interior_segment(populated, capsys):
    # Interior damage is not the crash signature (only a *final* line can
    # be torn), so the CLI must refuse loudly instead of recovering.
    path = populated.segments()[0]
    lines = open(path).read().splitlines()
    lines[2] = '{"broken'
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    assert journal_main(["stats", "--dir", populated.directory]) == 3
    error = json.loads(capsys.readouterr().err)["error"]
    assert error["code"] == "corrupt-journal"
    assert "corrupt interior record" in error["message"]


def test_cli_errors_on_empty_journal(tmp_path, capsys):
    empty = tmp_path / "journal"
    empty.mkdir()
    assert journal_main(["stats", "--dir", str(empty)]) == 4
    error = json.loads(capsys.readouterr().err)["error"]
    assert error["code"] == "empty-journal"
    assert "no segments" in error["message"]


def test_cli_error_paths_never_print_tracebacks(populated, tmp_path, capsys):
    # Each distinct failure is one structured JSON line on stderr.
    for args in (
        ["stats", "--dir", str(tmp_path / "nope")],
        ["tail", "--dir", str(tmp_path / "nope")],
        ["query", "--dir", str(tmp_path / "nope")],
    ):
        assert journal_main(args) != 0
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert json.loads(err)["error"]["code"] == "no-journal"


# ------------------------------------------------------------------ drift


def drift_records(labels, agreement=1.0):
    return [
        {"label": label, "agreement": agreement} for label in labels
    ]


def test_total_variation_extremes():
    assert total_variation({0: 1.0}, {0: 1.0}) == 0.0
    assert total_variation({0: 1.0}, {1: 1.0}) == 1.0


def test_drift_insufficient_data():
    verdict = detect_drift(drift_records([0] * 10), DriftConfig(min_samples=20))
    assert verdict["status"] == "insufficient-data"
    assert verdict["alerts"] == []


def test_drift_ok_on_stable_traffic():
    config = DriftConfig(recent_window=30, baseline_window=60, min_samples=20)
    records = drift_records([0, 1, 2] * 40)
    verdict = detect_drift(records, config)
    assert verdict["status"] == "ok"
    assert verdict["label_tvd"] < 0.1


def test_label_shift_trips_the_alert():
    config = DriftConfig(recent_window=30, baseline_window=60, min_samples=20)
    records = drift_records([0, 1] * 40) + drift_records([5] * 30)
    verdict = detect_drift(records, config)
    assert verdict["status"] == "drift"
    assert [alert["kind"] for alert in verdict["alerts"]] == ["label-shift"]
    assert verdict["label_tvd"] > config.label_threshold


def test_agreement_collapse_trips_the_alert():
    config = DriftConfig(recent_window=30, baseline_window=60, min_samples=20)
    records = drift_records([0, 1] * 40, agreement=1.0) + drift_records(
        [0, 1] * 15, agreement=0.3
    )
    verdict = detect_drift(records, config)
    assert verdict["status"] == "drift"
    assert [alert["kind"] for alert in verdict["alerts"]] == ["agreement-collapse"]
    assert verdict["agreement_drop"] == pytest.approx(0.7)


def test_drift_config_validation():
    with pytest.raises(ValueError):
        DriftConfig(recent_window=0)
    with pytest.raises(ValueError):
        DriftConfig(label_threshold=0.0)
    with pytest.raises(ValueError):
        DriftConfig(agreement_threshold=1.5)


# ------------------------------------------------------------------ replay


def test_replayable_graphs_skips_and_counts(tmp_path):
    suite = build_suite(families=["clomp"], limit=2)
    graphs = [GraphBuilder().build_module(r.module) for r in suite]
    records = [
        record(0, graph=graphs[0]),
        record(1),  # journalled without a graph
        record(2, graph=graphs[1]),
    ]
    reader = write_journal(tmp_path, records)
    decoded, replayed, skipped = replayable_graphs(reader.records())
    assert len(decoded) == 2
    assert skipped == 1
    assert [entry["ts"] for entry in replayed] == [0.0, 2.0]


def test_replay_ab_empty_journal_reports_zero():
    report = replay_ab([record(0)], None, None)
    assert report["requests"] == 0
    assert report["skipped_no_graph"] == 1
    assert report["agreement_rate"] is None
