"""Tests for the classic-ML substrate: decision trees, GA, CV, scaling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    GAConfig,
    MinMaxScaler,
    ReducedTreeClassifier,
    StandardScaler,
    SubsetGeneticAlgorithm,
    fold_of_groups,
    grouped_kfold,
    kfold_indices,
    select_features_ga,
    train_validation_split,
)


class TestDecisionTree:
    def test_fits_simple_threshold(self):
        rng = np.random.default_rng(0)
        features = rng.random((200, 3))
        labels = (features[:, 1] > 0.5).astype(int)
        tree = DecisionTreeClassifier(random_state=0).fit(features, labels)
        assert tree.score(features, labels) > 0.98
        assert tree.feature_importances(3).argmax() == 1

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        features = rng.random((300, 2))
        labels = (features[:, 0] > 0.5).astype(int) + 2 * (features[:, 1] > 0.5).astype(int)
        tree = DecisionTreeClassifier(random_state=0).fit(features, labels)
        assert tree.score(features, labels) > 0.95
        proba = tree.predict_proba(features[:5])
        assert proba.shape == (5, 4)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_max_depth_limits_growth(self):
        rng = np.random.default_rng(2)
        features = rng.random((200, 5))
        labels = rng.integers(0, 4, 200)
        shallow = DecisionTreeClassifier(max_depth=2, random_state=0).fit(features, labels)
        deep = DecisionTreeClassifier(random_state=0).fit(features, labels)
        assert shallow.depth() <= 2
        assert deep.node_count() >= shallow.node_count()

    def test_single_class_dataset(self):
        features = np.random.default_rng(0).random((10, 2))
        labels = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier().fit(features, labels)
        assert (tree.predict(features) == 0).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3,)), np.zeros(3))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.zeros(4))

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_predictions_are_known_labels(self, n):
        rng = np.random.default_rng(n)
        features = rng.random((n, 3))
        labels = rng.integers(0, 3, n)
        tree = DecisionTreeClassifier(random_state=0).fit(features, labels)
        predictions = tree.predict(rng.random((7, 3)))
        assert set(predictions.tolist()) <= set(labels.tolist())


class TestGeneticAlgorithm:
    def test_finds_informative_subset(self):
        target = {1, 4, 7}

        def fitness(subset):
            return len(set(subset) & target)

        ga = SubsetGeneticAlgorithm(
            10, 3, fitness, GAConfig(population_size=40, generations=10, seed=0)
        )
        best, score = ga.run()
        assert score == 3
        assert set(best) == target
        assert ga.evaluations > 0

    def test_subset_size_invariant(self):
        ga = SubsetGeneticAlgorithm(
            20, 5, lambda s: 0.0, GAConfig(population_size=10, generations=2, seed=1)
        )
        best, _ = ga.run()
        assert len(best) == 5
        assert len(set(best)) == 5

    def test_subset_size_cannot_exceed_universe(self):
        with pytest.raises(ValueError):
            SubsetGeneticAlgorithm(3, 5, lambda s: 0.0)

    def test_feature_selection_recovers_signal(self):
        rng = np.random.default_rng(0)
        informative = rng.random((150, 2))
        noise = rng.random((150, 8))
        features = np.concatenate([informative, noise], axis=1)
        labels = (informative[:, 0] + informative[:, 1] > 1.0).astype(int)
        result = select_features_ga(
            features,
            labels,
            subset_size=2,
            folds=3,
            ga_config=GAConfig(population_size=30, generations=6, seed=0),
        )
        assert result.fitness > 0.75
        reduced = ReducedTreeClassifier(result.selected).fit(features, labels)
        assert reduced.score(features, labels) > 0.8


class TestCrossValidation:
    def test_kfold_partitions_everything(self):
        seen = []
        for train, test in kfold_indices(23, 5, seed=0):
            seen.extend(test.tolist())
            assert set(train.tolist()).isdisjoint(test.tolist())
        assert sorted(seen) == list(range(23))

    def test_grouped_kfold_keeps_groups_together(self):
        groups = [f"g{i // 4}" for i in range(40)]  # 10 groups of 4 samples
        folds = grouped_kfold(groups, folds=5, seed=0)
        for train, test in folds:
            test_groups = {groups[i] for i in test}
            train_groups = {groups[i] for i in train}
            assert test_groups.isdisjoint(train_groups)

    def test_fold_of_groups_consistent(self):
        groups = [f"r{i}" for i in range(30)]
        mapping = fold_of_groups(groups, folds=10, seed=3)
        assert set(mapping.values()) <= set(range(10))
        assert fold_of_groups(groups, folds=10, seed=3) == mapping

    def test_train_validation_split(self):
        train, val = train_validation_split(50, validation_fraction=0.2, seed=0)
        assert len(val) == 10
        assert set(train.tolist()).isdisjoint(val.tolist())
        assert len(train) + len(val) == 50

    @given(st.integers(min_value=4, max_value=200), st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_kfold_never_loses_samples(self, n, k):
        k = min(k, n)
        total = sum(len(test) for _, test in kfold_indices(n, k, seed=1))
        assert total == n


class TestScalers:
    def test_standard_scaler(self):
        rng = np.random.default_rng(0)
        data = rng.random((100, 3)) * 10 + 5
        scaler = StandardScaler()
        scaled = scaler.fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_minmax_scaler(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() == 0.0 and scaled.max() == 1.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_constant_feature_handled(self):
        data = np.ones((5, 2))
        scaled = StandardScaler().fit_transform(data)
        assert np.isfinite(scaled).all()
