"""Tests for the NUMA/prefetcher simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numasim import (
    Configuration,
    EngineConfig,
    NumaPrefetchSimulator,
    PageMapping,
    PrefetcherSetting,
    ThreadMapping,
    WorkloadProfile,
    all_prefetcher_settings,
    build_configuration_space,
    build_numa_points,
    compute_placement,
    default_configuration,
    machine_by_name,
    map_threads,
    prefetcher_effect,
    sandy_bridge,
    skylake,
    skylake_gold,
    space_summary,
    translate_configuration,
)
from repro.numasim.counters import COUNTER_NAMES, PerformanceCounters


class TestTopology:
    def test_presets_are_valid(self):
        for machine in (sandy_bridge(), skylake(), skylake_gold()):
            assert machine.validate() == []
            assert machine.total_cores == machine.num_nodes * machine.cores_per_node

    def test_paper_testbed_shapes(self):
        assert sandy_bridge().num_nodes == 4
        assert sandy_bridge().total_cores == 32
        assert skylake().num_nodes == 2
        assert skylake().total_cores == 48

    def test_machine_by_name(self):
        assert machine_by_name("skylake").name == "skylake"
        with pytest.raises(KeyError):
            machine_by_name("pentium-pro")


class TestPrefetchers:
    def test_sixteen_settings(self):
        settings_list = all_prefetcher_settings()
        assert len(settings_list) == 16
        assert len({s.mask for s in settings_list}) == 16

    def test_msr_encoding_inverts_mask(self):
        setting = PrefetcherSetting.all_on()
        assert setting.msr_value == 0
        assert PrefetcherSetting.all_off().msr_value == 0xF

    def test_mask_round_trip(self):
        for mask in range(16):
            assert PrefetcherSetting.from_mask(mask).mask == mask

    def test_streamers_help_sequential(self):
        on = prefetcher_effect(PrefetcherSetting.all_on(), 0.9, 0.05, 0.0)
        off = prefetcher_effect(PrefetcherSetting.all_off(), 0.9, 0.05, 0.0)
        assert on.latency_coverage > off.latency_coverage
        assert off.latency_coverage == 0.0

    def test_prefetchers_pollute_irregular(self):
        on = prefetcher_effect(PrefetcherSetting.all_on(), 0.0, 0.0, 0.9)
        assert on.pollution > 0.0
        assert on.bandwidth_overhead > 1.0
        assert on.latency_coverage < 0.1

    @given(
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=40, deadline=None)
    def test_effect_bounds(self, mask, sequential, irregular):
        sequential, irregular = min(sequential, 1 - 0), min(irregular, max(0.0, 1 - sequential))
        effect = prefetcher_effect(PrefetcherSetting.from_mask(mask), sequential, 0.0, irregular)
        assert 0.0 <= effect.latency_coverage <= 0.95
        assert 1.0 <= effect.bandwidth_overhead <= 1.9
        assert 0.0 <= effect.pollution <= 0.5


class TestMapping:
    def test_contiguous_packs_nodes(self):
        counts = map_threads(10, 4, 8, ThreadMapping.CONTIGUOUS)
        assert counts == [8, 2, 0, 0]

    def test_round_robin_scatters(self):
        counts = map_threads(10, 4, 8, ThreadMapping.ROUND_ROBIN)
        assert counts == [3, 3, 2, 2]

    def test_first_touch_after_serial_init_concentrates_traffic(self):
        placement = compute_placement(
            threads=16,
            nodes=4,
            cores_per_node=8,
            thread_mapping=ThreadMapping.ROUND_ROBIN,
            page_mapping=PageMapping.FIRST_TOUCH,
            shared_fraction=0.1,
            init_by_master=True,
        )
        assert placement.memory_nodes == 1
        assert placement.node_traffic_share[0] == pytest.approx(1.0)
        assert placement.local_fraction < 0.5

    def test_interleave_balances_traffic(self):
        placement = compute_placement(
            threads=16,
            nodes=4,
            cores_per_node=8,
            thread_mapping=ThreadMapping.ROUND_ROBIN,
            page_mapping=PageMapping.INTERLEAVE,
            shared_fraction=0.5,
            init_by_master=True,
        )
        assert max(placement.node_traffic_share) == pytest.approx(0.25)

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=4),
        st.sampled_from(list(PageMapping.__dict__.values())[1:5]),
        st.floats(min_value=0, max_value=1),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_placement_invariants(self, threads, nodes, page_mapping, shared, master):
        if page_mapping not in ("first_touch", "locality", "interleave", "balance"):
            return
        placement = compute_placement(
            threads=threads,
            nodes=nodes,
            cores_per_node=16,
            thread_mapping=ThreadMapping.CONTIGUOUS,
            page_mapping=page_mapping,
            shared_fraction=shared,
            init_by_master=master,
        )
        assert 0.0 <= placement.local_fraction <= 1.0
        assert placement.active_nodes >= 1
        assert sum(placement.node_traffic_share) == pytest.approx(1.0)


class TestConfigurationSpace:
    def test_space_sizes_close_to_paper(self):
        skylake_space = build_configuration_space(skylake())
        sandy_space = build_configuration_space(sandy_bridge())
        assert space_summary(skylake_space)["prefetcher_settings"] == 16
        # Paper: 288 (Skylake) and 320 (Sandy Bridge); ours are the same order.
        assert 200 <= len(skylake_space) <= 400
        assert 300 <= len(sandy_space) <= 700
        assert len(sandy_space) > len(skylake_space)

    def test_default_configuration_in_space(self):
        machine = skylake()
        space = build_configuration_space(machine)
        default = default_configuration(machine)
        assert default in space
        assert default.threads == machine.total_cores
        assert default.prefetchers.enabled_count == 4

    def test_no_duplicate_points(self):
        space = build_configuration_space(sandy_bridge())
        assert len({c.key for c in space}) == len(space)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            Configuration(0, 1, ThreadMapping.CONTIGUOUS, PageMapping.LOCALITY, PrefetcherSetting.all_on())
        with pytest.raises(ValueError):
            Configuration(4, 1, "diagonal", PageMapping.LOCALITY, PrefetcherSetting.all_on())

    def test_translation_rescales_threads(self):
        source, target = sandy_bridge(), skylake()
        config = Configuration(32, 4, ThreadMapping.CONTIGUOUS, PageMapping.LOCALITY, PrefetcherSetting.all_on())
        translated = translate_configuration(config, source, target)
        assert translated.threads == 48
        assert translated.nodes == 2
        assert translated.page_mapping == config.page_mapping
        back = translate_configuration(translated, target, source)
        assert back.threads == 32 and back.nodes == 4


def _profile(**overrides) -> WorkloadProfile:
    base = dict(
        name="test",
        iterations=1e6,
        flops_per_iter=4.0,
        bytes_per_iter=16.0,
        footprint_mb=128.0,
        working_set_kb=8192.0,
        sequential_fraction=0.7,
        strided_fraction=0.1,
        irregular_fraction=0.1,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


class TestEngine:
    def test_simulation_is_deterministic(self):
        machine = skylake()
        simulator = NumaPrefetchSimulator(machine)
        config = default_configuration(machine)
        a = simulator.simulate(_profile(), config)
        b = simulator.simulate(_profile(), config)
        assert a.time_seconds == pytest.approx(b.time_seconds)

    def test_time_scales_with_iterations(self):
        machine = skylake()
        simulator = NumaPrefetchSimulator(machine)
        config = default_configuration(machine)
        small = simulator.simulate(_profile(iterations=1e5), config)
        large = simulator.simulate(_profile(iterations=1e7), config)
        assert large.time_seconds > small.time_seconds * 10

    def test_counters_are_physical(self):
        machine = sandy_bridge()
        simulator = NumaPrefetchSimulator(machine)
        result = simulator.simulate(_profile(), default_configuration(machine))
        counters = result.counters
        assert counters.package_power_w > 0
        assert 0 <= counters.l3_miss_ratio <= 1
        assert 0 <= counters.remote_access_ratio <= 1
        assert counters.dram_bandwidth_gbs >= 0
        vector = counters.as_vector()
        assert vector.shape == (len(COUNTER_NAMES),)
        assert PerformanceCounters.from_vector(vector).as_dict() == counters.as_dict()

    def test_sync_heavy_prefers_fewer_threads(self):
        machine = sandy_bridge()
        simulator = NumaPrefetchSimulator(machine)
        profile = _profile(
            iterations=2e5,
            footprint_mb=4.0,
            working_set_kb=64.0,
            sequential_fraction=0.2,
            strided_fraction=0.1,
            irregular_fraction=0.0,
            atomics_per_iter=0.3,
            barriers_per_call=20.0,
            shared_fraction=0.6,
        )
        pf = PrefetcherSetting.all_on()
        few = Configuration(4, 1, ThreadMapping.CONTIGUOUS, PageMapping.FIRST_TOUCH, pf)
        many = Configuration(32, 4, ThreadMapping.CONTIGUOUS, PageMapping.LOCALITY, pf)
        assert simulator.simulate(profile, few).time_seconds < simulator.simulate(profile, many).time_seconds

    def test_irregular_prefers_prefetchers_off(self):
        machine = sandy_bridge()
        simulator = NumaPrefetchSimulator(machine)
        profile = _profile(
            sequential_fraction=0.05,
            strided_fraction=0.05,
            irregular_fraction=0.85,
            working_set_kb=65536.0,
            footprint_mb=512.0,
            shared_fraction=0.5,
            dependency_chain=0.7,
        )
        base = Configuration(32, 4, ThreadMapping.CONTIGUOUS, PageMapping.INTERLEAVE, PrefetcherSetting.all_on())
        off = base.with_prefetchers(PrefetcherSetting.all_off())
        assert simulator.simulate(profile, off).time_seconds < simulator.simulate(profile, base).time_seconds

    def test_streaming_benefits_from_prefetchers_when_latency_bound(self):
        machine = skylake()
        simulator = NumaPrefetchSimulator(machine)
        profile = _profile(
            iterations=5e5,
            sequential_fraction=0.9,
            strided_fraction=0.05,
            irregular_fraction=0.0,
            footprint_mb=64.0,
            working_set_kb=4096.0,
            flops_per_iter=12.0,
        )
        pf_on = Configuration(2, 1, ThreadMapping.CONTIGUOUS, PageMapping.FIRST_TOUCH, PrefetcherSetting.all_on())
        pf_off = pf_on.with_prefetchers(PrefetcherSetting.all_off())
        assert simulator.simulate(profile, pf_on).time_seconds <= simulator.simulate(profile, pf_off).time_seconds

    def test_full_space_yields_headroom_over_default(self):
        machine = sandy_bridge()
        simulator = NumaPrefetchSimulator(machine)
        space = build_configuration_space(machine)
        default = default_configuration(machine)
        profile = _profile(
            iterations=3e4,
            footprint_mb=2.0,
            working_set_kb=64.0,
            barriers_per_call=40.0,
            shared_fraction=0.3,
            scalability_limit=8,
        )
        results = simulator.simulate_space(profile, space)
        best = min(results.values(), key=lambda r: r.time_seconds)
        assert results[default].time_seconds / best.time_seconds > 1.3

    def test_per_call_series_and_noise(self):
        machine = skylake()
        simulator = NumaPrefetchSimulator(machine, EngineConfig(measurement_noise=0.05))
        profile = _profile(phase_variability=0.5)
        result = simulator.simulate(profile, default_configuration(machine))
        assert len(result.per_call_times) == profile.calls
        assert max(result.per_call_times) > min(result.per_call_times)

    def test_breakdown_sums_reasonably(self):
        machine = skylake()
        simulator = NumaPrefetchSimulator(machine)
        result = simulator.simulate(_profile(), default_configuration(machine))
        assert set(result.breakdown) >= {"compute", "latency", "bandwidth", "serial"}
        assert all(v >= 0 for v in result.breakdown.values())

    @given(
        st.floats(min_value=0.0, max_value=0.9),
        st.integers(min_value=1, max_value=48),
    )
    @settings(max_examples=30, deadline=None)
    def test_time_always_positive(self, irregular, threads):
        machine = skylake()
        simulator = NumaPrefetchSimulator(machine)
        profile = _profile(
            sequential_fraction=min(0.9, 1.0 - irregular) * 0.9,
            strided_fraction=0.0,
            irregular_fraction=irregular,
        )
        config = Configuration(
            threads, 2, ThreadMapping.ROUND_ROBIN, PageMapping.LOCALITY, PrefetcherSetting.all_on()
        )
        result = simulator.simulate(profile, config)
        assert result.time_seconds > 0
        assert np.isfinite(result.time_seconds)


class TestProfiles:
    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", sequential_fraction=0.8, strided_fraction=0.3, irregular_fraction=0.2)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", load_imbalance=0.5)

    def test_scaled_profile_grows(self):
        profile = _profile()
        scaled = profile.scaled(4.0, name_suffix="@big")
        assert scaled.iterations == profile.iterations * 4
        assert scaled.footprint_mb == profile.footprint_mb * 4
        assert scaled.name.endswith("@big")

    def test_arithmetic_intensity(self):
        assert _profile(flops_per_iter=8, bytes_per_iter=4).arithmetic_intensity == 2.0
