"""Tests for request tracing, metrics exposition, and the observable hub.

Covers the per-request span traces threaded through the predict paths
(sync, async/batched, cache hit vs miss, HTTP opt-in with decode time),
the :class:`ServingStats` satellite fixes (documented 0/1-sample
percentile behaviour, honest cross-model latency aggregation), the
Prometheus text exposition of ``GET /metrics``, the hub's journal wiring
and drift endpoint, and — end to end — the ISSUE acceptance demo: two
model versions served over HTTP, every request journalled with spans, the
``repro-journal`` query reproducing the served label distribution, a
deterministic A/B replay diff, and a synthetic agreement collapse
tripping the drift alert on ``GET /v1/models/<name>/drift``.
"""

import json

import pytest

from repro.core import StaticConfigurationPredictor, StaticModelConfig
from repro.graphs import GraphBuilder, GraphEncoder
from repro.serving import (
    ArtifactRegistry,
    DeploymentSpec,
    DriftConfig,
    EnsembleConfig,
    EnsemblePredictionService,
    JournalReader,
    JournalWriter,
    ModelHub,
    PredictionService,
    ServiceConfig,
    ServingApp,
    ServingStats,
    aggregate_snapshots,
    program_graph_to_dict,
    render_prometheus,
    replay_ab,
    replayable_graphs,
)
from repro.serving.journal_cli import main as journal_main
from repro.serving.trace import (
    consume_queue_waits,
    publish_queue_waits,
    reset_queue_waits,
    span,
)

NUM_LABELS = 4
ENSEMBLE_FOLDS = 3

MISS_SPANS = {"cache_lookup_s", "plan_build_s", "infer_s", "combine_s", "total_s"}
HIT_SPANS = {"cache_lookup_s", "combine_s", "total_s"}


def small_predictor(seed=3):
    """A small (untrained — weights are deterministic) predictor."""
    return StaticConfigurationPredictor(
        num_labels=NUM_LABELS,
        encoder=GraphEncoder(),
        config=StaticModelConfig(
            hidden_dim=8, graph_vector_dim=8, num_rgcn_layers=1, epochs=1, seed=seed
        ),
    )


@pytest.fixture(scope="module")
def raw_graphs(small_suite):
    builder = GraphBuilder()
    return [builder.build_module(region.module) for region in small_suite][:6]


@pytest.fixture(scope="module")
def registry_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("observe-registry")
    registry = ArtifactRegistry(root)
    registry.save("demo", small_predictor(seed=1))  # v0001
    registry.save("demo", small_predictor(seed=2))  # v0002 (the latest)
    for fold in range(ENSEMBLE_FOLDS):
        registry.save(f"ens-fold{fold}", small_predictor(seed=10 + fold))
    return str(root)


def make_service(registry_root, **overrides):
    defaults = dict(max_batch_size=16, max_wait_s=0.01)
    defaults.update(overrides)
    artifact = ArtifactRegistry(registry_root).load("demo")
    return PredictionService.from_artifact(artifact, config=ServiceConfig(**defaults))


# ------------------------------------------------------------- trace layer


class TestSpanPrimitives:
    def test_span_accumulates_into_the_trace(self):
        trace = {}
        with span(trace, "infer_s"):
            pass
        first = trace["infer_s"]
        with span(trace, "infer_s"):
            pass
        assert trace["infer_s"] >= first  # accumulates, never overwrites

    def test_span_is_a_noop_without_a_trace(self):
        with span(None, "infer_s"):
            pass  # must not raise

    def test_queue_waits_consume_once_and_check_length(self):
        token = publish_queue_waits([0.1, 0.2])
        try:
            assert consume_queue_waits(3) is None  # length mismatch → refused
            assert consume_queue_waits(2) == [0.1, 0.2]
            assert consume_queue_waits(2) is None  # consumed — no double count
        finally:
            reset_queue_waits(token)


class TestServiceTraces:
    def test_miss_then_hit_traces(self, registry_root, raw_graphs):
        service = make_service(registry_root)
        miss = service.predict(raw_graphs[0])
        assert set(miss.trace) == MISS_SPANS
        assert all(value >= 0.0 for value in miss.trace.values())
        assert miss.trace["total_s"] == pytest.approx(miss.latency_s)
        hit = service.predict(raw_graphs[0])
        assert hit.cache_hit
        assert set(hit.trace) == HIT_SPANS  # no plan/infer work on a hit

    def test_async_path_adds_queue_wait(self, registry_root, raw_graphs):
        service = make_service(registry_root).start()
        try:
            futures = [service.submit(graph) for graph in raw_graphs[:4]]
            for future in futures:
                trace = future.result(timeout=30).trace
                assert "queue_wait_s" in trace
                assert trace["queue_wait_s"] >= 0.0
        finally:
            service.stop()

    def test_ensemble_traces(self, registry_root, raw_graphs):
        service = EnsemblePredictionService.from_registry(
            registry_root, "ens", config=EnsembleConfig(max_batch_size=16)
        )
        result = service.predict(raw_graphs[0])
        assert set(result.trace) == MISS_SPANS

    def test_stage_aggregates_reach_the_snapshot(self, registry_root, raw_graphs):
        service = make_service(registry_root)
        for graph in raw_graphs[:3]:
            service.predict(graph)
        stages = service.snapshot()["stages"]
        for stage in ("cache_lookup", "plan_build", "infer", "combine"):
            assert stages[stage]["count"] > 0
            assert stages[stage]["p95_s"] >= stages[stage]["p50_s"] >= 0.0


# --------------------------------------------------- stats satellite fixes


class TestPercentileEdges:
    def test_empty_window_reports_zero(self):
        assert ServingStats().latency_percentile(50) == 0.0

    def test_single_sample_is_every_percentile(self):
        stats = ServingStats()
        stats.record_request(latency_s=0.25, cache_hit=False)
        assert stats.latency_percentile(0) == 0.25
        assert stats.latency_percentile(50) == 0.25
        assert stats.latency_percentile(100) == 0.25

    def test_out_of_range_percentile_raises(self):
        with pytest.raises(ValueError, match="percentile"):
            ServingStats().latency_percentile(101)
        with pytest.raises(ValueError, match="percentile"):
            ServingStats().latency_percentile(-1)


class TestHonestAggregation:
    def snapshots(self):
        a, b = ServingStats(), ServingStats()
        for latency in (0.010, 0.020, 0.030):
            a.record_request(latency_s=latency, cache_hit=False)
        b.record_request(latency_s=0.100, cache_hit=True)
        return a, b

    def test_without_windows_percentiles_are_declared_unmergeable(self):
        a, b = self.snapshots()
        merged = aggregate_snapshots([a.snapshot(), b.snapshot()])
        latency = merged["latency"]
        assert latency["merged_from_raw_windows"] is False
        assert latency["p50_s"] is None and latency["p95_s"] is None
        assert "note" in latency  # says *why* there is no merged percentile
        assert merged["total_requests"] == 4  # counters still merge fine

    def test_with_windows_percentiles_pool_raw_samples(self):
        a, b = self.snapshots()
        merged = aggregate_snapshots(
            [a.snapshot(), b.snapshot()],
            latency_windows=[a.latency_values(), b.latency_values()],
        )
        latency = merged["latency"]
        assert latency["merged_from_raw_windows"] is True
        assert latency["samples"] == 4
        assert latency["p50_s"] == pytest.approx(0.025)
        assert latency["p95_s"] > 0.030  # the slow model's tail survives


# ---------------------------------------------------- prometheus exposition


class TestPrometheus:
    def test_renderer_emits_labelled_series(self, registry_root, raw_graphs):
        hub = ModelHub(registry_root)
        try:
            hub.load(DeploymentSpec(name="m1", artifact="demo"))
            app = ServingApp(hub)
            for graph in raw_graphs[:2]:
                status, _, _ = app.handle(
                    "POST",
                    "/v1/models/m1/predict",
                    json.dumps({"graph": program_graph_to_dict(graph)}).encode(),
                )
                assert status == 200
            text = render_prometheus(app.metrics())
            assert '# TYPE repro_requests_total counter' in text
            assert 'repro_requests_total{model="m1"} 2' in text
            assert 'repro_requests_total{model="_aggregate"} 2' in text
            assert 'repro_latency_seconds{model="m1",quantile="0.50"}' in text
            assert 'repro_stage_seconds{model="m1",quantile="0.50",stage="infer"}' in text
            for line in text.splitlines():
                assert line.startswith(("#", "repro_"))
        finally:
            hub.stop()

    def test_http_route_content_type_and_406(self, registry_root):
        hub = ModelHub(registry_root)
        try:
            hub.load(DeploymentSpec(name="m1", artifact="demo"))
            app = ServingApp(hub)
            status, payload, headers = app.handle(
                "GET", "/metrics?format=prometheus"
            )
            assert status == 200
            assert isinstance(payload, str)
            assert headers["Content-Type"] == (
                "text/plain; version=0.0.4; charset=utf-8"
            )
            status, payload, _ = app.handle("GET", "/metrics?format=json")
            assert status == 200 and isinstance(payload, dict)
            status, payload, _ = app.handle("GET", "/metrics?format=xml")
            assert status == 406
            assert payload["error"]["code"] == "unsupported-format"
        finally:
            hub.stop()


# ------------------------------------------------------ HTTP trace opt-in


class TestHTTPTraceOptIn:
    @pytest.fixture()
    def app(self, registry_root):
        hub = ModelHub(registry_root)
        hub.load(DeploymentSpec(name="m1", artifact="demo"))
        app = ServingApp(hub)
        yield app
        hub.stop()

    def post(self, app, payload):
        return app.handle(
            "POST", "/v1/models/m1/predict", json.dumps(payload).encode()
        )

    def test_trace_absent_by_default(self, app, raw_graphs):
        wire = {"graph": program_graph_to_dict(raw_graphs[0])}
        status, payload, _ = self.post(app, wire)
        assert status == 200
        assert "trace" not in payload["result"]

    def test_opt_in_returns_spans_with_decode_time(self, app, raw_graphs):
        wire = {"graph": program_graph_to_dict(raw_graphs[0]), "trace": True}
        status, payload, _ = self.post(app, wire)
        assert status == 200
        trace = payload["result"]["trace"]
        assert MISS_SPANS <= set(trace)
        assert trace["decode_s"] > 0.0  # HTTP adds the wire-decode span

    def test_batch_opt_in(self, app, raw_graphs):
        wire = {
            "graphs": [program_graph_to_dict(graph) for graph in raw_graphs[:3]],
            "trace": True,
        }
        status, payload, _ = self.post(app, wire)
        assert status == 200
        for result in payload["results"]:
            assert "decode_s" in result["trace"]

    def test_non_bool_trace_is_a_400(self, app, raw_graphs):
        wire = {"graph": program_graph_to_dict(raw_graphs[0]), "trace": "yes"}
        status, payload, _ = self.post(app, wire)
        assert status == 400
        assert payload["error"]["code"] == "invalid-request"


# ------------------------------------------------------- hub journal wiring


class TestHubJournal:
    def test_snapshot_and_health_carry_journal_and_drift(
        self, registry_root, raw_graphs, tmp_path
    ):
        hub = ModelHub(registry_root, journal_dir=str(tmp_path / "journal"))
        try:
            hub.load(DeploymentSpec(name="m1", artifact="demo"))
            hub.predict("m1", raw_graphs[0])
            snapshot = hub.snapshot()
            assert snapshot["journal"]["directory"] == str(tmp_path / "journal")
            health = hub.model_health("m1")
            assert health["drift"]["status"] == "insufficient-data"
            drift = hub.model_drift("m1")
            assert drift["model"] == "m1"
            assert drift["status"] == "insufficient-data"
        finally:
            hub.stop()
        reader = JournalReader(str(tmp_path / "journal"))
        records = reader.records()
        assert len(records) == 1
        assert records[0]["model"] == "m1"
        assert records[0]["artifact"].endswith("v0002")  # latest resolved
        assert records[0]["stages"]["infer_s"] > 0.0

    def test_without_a_journal_drift_says_so(self, registry_root):
        hub = ModelHub(registry_root)
        try:
            hub.load(DeploymentSpec(name="m1", artifact="demo"))
            assert hub.model_drift("m1")["status"] == "no-journal"
            assert hub.model_health("m1")["drift"] is None
        finally:
            hub.stop()


# --------------------------------------------------- the acceptance demo


class TestObservabilityEndToEnd:
    """The ISSUE acceptance scenario, in one journey."""

    def test_journal_replay_and_drift(self, registry_root, raw_graphs, tmp_path, capsys):
        journal_dir = str(tmp_path / "journal")
        hub = ModelHub(
            registry_root,
            journal_dir=journal_dir,
            drift_config=DriftConfig(
                recent_window=8, baseline_window=16, min_samples=8
            ),
        )
        hub.load(DeploymentSpec(name="old", artifact="demo", version="v0001"))
        hub.load(DeploymentSpec(name="new", artifact="demo", version="v0002"))
        app = ServingApp(hub)

        # 1. Serve recorded traffic to both versions over HTTP.
        served_labels = []
        for repeat in range(4):
            for graph in raw_graphs:
                status, payload, _ = app.handle(
                    "POST",
                    "/v1/models/new/predict",
                    json.dumps(
                        {"graph": program_graph_to_dict(graph), "trace": True}
                    ).encode(),
                )
                assert status == 200
                served_labels.append(payload["result"]["label"])
        status, _, _ = app.handle(
            "POST",
            "/v1/models/old/predict",
            json.dumps({"graph": program_graph_to_dict(raw_graphs[0])}).encode(),
        )
        assert status == 200

        # 2. A synthetic agreement collapse on 'old': inject journal records
        #    directly (the drift detector reads the live per-model window).
        for i in range(16):
            hub.journal.record(
                {
                    "ts": float(i),
                    "model": "old",
                    "label": 0,
                    "agreement": 1.0 if i < 8 else 0.2,
                    "cache_hit": False,
                    "batch_size": 1,
                    "latency_s": 0.001,
                    "stages": {},
                    "graph": None,
                }
            )
        status, drift, _ = app.handle("GET", "/v1/models/old/drift")
        assert status == 200
        assert drift["status"] == "drift"
        assert "agreement-collapse" in [a["kind"] for a in drift["alerts"]]
        status, health, _ = app.handle("GET", "/v1/models/old")
        assert health["drift"]["status"] == "drift"
        # Stable traffic on 'new' stays quiet.
        status, drift, _ = app.handle("GET", "/v1/models/new/drift")
        assert status == 200 and drift["status"] in ("ok", "insufficient-data")

        hub.stop()  # flushes and closes the journal

        # 3. The journal captured every request, with spans and graphs.
        reader = JournalReader(journal_dir)
        new_records = reader.records(model="new")
        assert len(new_records) == len(raw_graphs) * 4
        for record in new_records:
            assert record["artifact"].endswith("v0002")
            assert "total_s" in record["stages"]
            assert record["stages"]["cache_lookup_s"] >= 0.0
        misses = [r for r in new_records if not r["cache_hit"]]
        assert misses and all(r["stages"]["infer_s"] > 0.0 for r in misses)
        assert all(r["batch_size"] > 0 for r in misses)
        assert reader.torn_tails == []

        # 4. The CLI query reproduces the served label distribution.
        journalled = {}
        for label in sorted(set(served_labels)):
            assert (
                journal_main(
                    [
                        "query",
                        "--dir",
                        journal_dir,
                        "--model",
                        "new",
                        "--label",
                        str(label),
                        "--count",
                    ]
                )
                == 0
            )
            journalled[label] = int(capsys.readouterr().out.strip())
        served = {}
        for label in served_labels:
            served[label] = served.get(label, 0) + 1
        assert journalled == served

        # 5. Deterministic A/B replay of the recorded traffic through both
        #    versions, offline.
        registry = ArtifactRegistry(registry_root)
        side_a = PredictionService.from_artifact(
            registry.load("demo", "v0001"), config=ServiceConfig(max_batch_size=16)
        )
        side_b = PredictionService.from_artifact(
            registry.load("demo", "v0002"), config=ServiceConfig(max_batch_size=16)
        )
        report = replay_ab(
            new_records, side_a, side_b, names=("v0001", "v0002")
        )
        assert report["requests"] == len(new_records)
        assert report["skipped_no_graph"] == 0
        # Side B is the model that served the traffic: the replay must
        # reproduce the journalled labels exactly.
        assert report["v0002"]["label_distribution"] == (
            reader.label_distribution(model="new")
        )
        for disagreement in report["disagreements"]:
            assert disagreement["v0002"] == disagreement["journalled_label"]
        # And the whole replay is deterministic.
        repeat = replay_ab(new_records, side_a, side_b, names=("v0001", "v0002"))
        assert repeat["agreement_rate"] == report["agreement_rate"]
        assert repeat["disagreements"] == report["disagreements"]

    def test_replayable_graphs_round_trip(self, registry_root, raw_graphs, tmp_path):
        journal_dir = str(tmp_path / "journal")
        hub = ModelHub(registry_root, journal_dir=journal_dir)
        hub.load(DeploymentSpec(name="m1", artifact="demo"))
        hub.predict("m1", raw_graphs[0])
        hub.stop()
        records = JournalReader(journal_dir).records()
        graphs, replayed, skipped = replayable_graphs(records)
        assert skipped == 0
        assert graphs[0].num_nodes == raw_graphs[0].num_nodes
