"""Tests for LICM, loop unrolling, inlining, CFG simplification and
property-based semantic preservation of whole flag sequences."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (
    F64,
    I64,
    BasicBlock,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    assert_valid,
    const_float,
    const_int,
    parse_function,
    pointer_to,
    print_module,
    run_function,
)
from repro.ir.loops import find_loops
from repro.passes import (
    PassManager,
    apply_flag_sequence,
    pipeline,
    run_passes,
    sample_flag_sequences,
)
from repro.workloads import build_suite


def build_licm_candidate():
    """Loop with an invariant multiplication inside the body."""
    module = Module("licm")
    fn = Function("f", FunctionType(F64, [I64, F64, pointer_to(F64)]), ["n", "s", "a"], module)
    entry = BasicBlock("entry", fn)
    loop = BasicBlock("loop", fn)
    done = BasicBlock("exit", fn)
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    i = b.phi(I64, "i")
    acc = b.phi(F64, "acc")
    invariant = b.fmul(fn.arguments[1], const_float(2.0), "inv")   # loop invariant
    ptr = b.gep(fn.arguments[2], [i], "ptr")
    val = b.load(ptr, "val")
    term = b.fmul(val, invariant, "term")
    acc_next = b.fadd(acc, term, "accn")
    i_next = b.add(i, const_int(1), "inext")
    cond = b.icmp("slt", i_next, fn.arguments[0], "cond")
    b.condbr(cond, loop, done)
    i.add_incoming(const_int(0), entry)
    i.add_incoming(i_next, loop)
    acc.add_incoming(const_float(0.0), entry)
    acc.add_incoming(acc_next, loop)
    b.position_at_end(done)
    b.ret(acc_next)
    return module, fn


class TestLICM:
    def test_invariant_hoisted_to_preheader(self):
        module, fn = build_licm_candidate()
        before = run_function(fn, [4, 3.0, [1.0, 2.0, 3.0, 4.0]])
        run_passes(module, ["licm"], verify_each=True)
        entry_opcodes = [inst.opcode for inst in fn.entry_block.instructions]
        assert "fmul" in entry_opcodes   # hoisted multiplication
        loop_block = fn.block_named("loop")
        invariant_left = [i for i in loop_block.instructions if i.name == "inv"]
        assert not invariant_left
        after = run_function(fn, [4, 3.0, [1.0, 2.0, 3.0, 4.0]])
        assert before == pytest.approx(after)

    def test_loads_are_not_hoisted(self):
        module, fn = build_licm_candidate()
        run_passes(module, ["licm"], verify_each=True)
        loop_block = fn.block_named("loop")
        assert any(inst.opcode == "load" for inst in loop_block.instructions)


class TestLoopUnroll:
    def build_constant_loop(self, trip: int):
        fn = parse_function(
            f"""
define f64 @sumk(f64 %x) {{
entry:
  br ^loop
loop:
  %i = phi i64 [0:i64, ^entry], [%inext, ^loop]
  %acc = phi f64 [0.0:f64, ^entry], [%accn, ^loop]
  %accn = fadd f64 %acc, %x
  %inext = add i64 %i, 1:i64
  %cond = icmp slt %inext, {trip}:i64
  condbr %cond, ^loop, ^done
done:
  ret %accn
}}
"""
        )
        return fn.parent, fn

    @pytest.mark.parametrize("trip", [1, 2, 4, 8])
    def test_full_unroll_small_loops(self, trip):
        module, fn = self.build_constant_loop(trip)
        expected = run_function(fn, [1.5])
        run_passes(module, ["loop-unroll"], verify_each=True)
        assert not find_loops(fn)   # loop is gone
        assert run_function(fn, [1.5]) == pytest.approx(expected)

    def test_large_loops_left_alone(self):
        module, fn = self.build_constant_loop(100)
        run_passes(module, ["loop-unroll"], verify_each=True)
        assert len(find_loops(fn)) == 1

    def test_non_constant_bounds_left_alone(self, dot_module):
        fn = dot_module.functions[0]
        run_passes(dot_module, ["loop-unroll"], verify_each=True)
        assert len(find_loops(fn)) == 1


class TestSimplifyCFG:
    def test_constant_branch_folded(self):
        fn = parse_function(
            """
define i64 @f() {
entry:
  condbr 1:i1, ^yes, ^no
yes:
  ret 10:i64
no:
  ret 20:i64
}
"""
        )
        module = fn.parent
        run_passes(module, ["simplifycfg"], verify_each=True)
        assert fn.block_named("no") is None
        assert run_function(fn, []) == 10

    def test_straightline_blocks_merged(self):
        fn = parse_function(
            """
define i64 @f(i64 %x) {
entry:
  %a = add i64 %x, 1:i64
  br ^next
next:
  %b = add i64 %a, 2:i64
  ret %b
}
"""
        )
        module = fn.parent
        before = run_function(fn, [5])
        run_passes(module, ["simplifycfg"], verify_each=True)
        assert len(fn.blocks) == 1
        assert run_function(fn, [5]) == before


class TestInliner:
    def build_caller(self):
        module = Module("inline")
        helper = Function("helper", FunctionType(F64, [F64]), ["x"], module)
        helper.attributes.add("inline")
        hb = IRBuilder(BasicBlock("entry", helper))
        doubled = hb.fmul(helper.arguments[0], const_float(2.0), "doubled")
        hb.ret(doubled)

        caller = Function("caller", FunctionType(F64, [F64]), ["v"], module)
        cb = IRBuilder(BasicBlock("entry", caller))
        result = cb.call(helper, [caller.arguments[0]], F64, "result")
        plus = cb.fadd(result, const_float(1.0), "plus")
        cb.ret(plus)
        return module, caller

    def test_call_is_inlined(self):
        module, caller = self.build_caller()
        before = run_function(caller, [3.0])
        run_passes(module, ["inline"], verify_each=True)
        opcodes = [inst.opcode for inst in caller.instructions()]
        assert "call" not in opcodes
        assert run_function(caller, [3.0]) == pytest.approx(before)

    def test_omp_outlined_not_inlined(self, region_suite):
        region = region_suite[0]
        module = region.module.clone()
        run_passes(module, ["inline"], verify_each=True)
        assert module.get_function(region.function_name) is not None

    def test_noinline_respected(self):
        module, caller = self.build_caller()
        module.get_function("helper").attributes.discard("inline")
        module.get_function("helper").attributes.add("noinline")
        run_passes(module, ["inline"], verify_each=True)
        assert any(inst.opcode == "call" for inst in caller.instructions())


class TestFlagSequences:
    def test_sampler_is_deterministic(self):
        a = sample_flag_sequences(10, seed=7)
        b = sample_flag_sequences(10, seed=7)
        assert [tuple(s) for s in a] == [tuple(s) for s in b]
        c = sample_flag_sequences(10, seed=8)
        assert [tuple(s) for s in a] != [tuple(s) for s in c]

    def test_sampled_passes_exist(self):
        from repro.passes import available_passes

        known = set(available_passes())
        for sequence in sample_flag_sequences(50, seed=0):
            assert set(sequence) <= known

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_drop_probability_shortens_sequences(self, seed):
        from repro.passes import O3_PIPELINE

        sequences = sample_flag_sequences(5, seed=seed, drop_probability=0.8)
        assert all(len(s) <= len(O3_PIPELINE) for s in sequences)

    def test_apply_flag_sequence_does_not_mutate_original(self, region_suite):
        region = region_suite[0]
        original_text = print_module(region.module)
        apply_flag_sequence(region.module, pipeline("O3"), verify_each=True)
        assert print_module(region.module) == original_text


class TestSemanticPreservation:
    """Property-style checks: optimization never changes observable results."""

    ARGS = {"n": 6}

    def _interpret_region(self, module, function_name):
        fn = module.get_function(function_name)
        args = []
        for arg in fn.arguments:
            if arg.type == I64:
                args.append(6)
            elif arg.type == pointer_to(F64):
                args.append([float(i % 5) + 0.5 for i in range(4096)])
            elif arg.type == pointer_to(I64):
                args.append([float((i * 7) % 64) for i in range(4096)])
            else:
                args.append(0.0)
        run_function(fn, args, max_steps=500_000)
        # Output arrays are mutated in place; return the first array's prefix
        # as the observable result.
        return [round(v, 6) for v in args[1][:32]] if len(args) > 1 else []

    @pytest.mark.parametrize("level", ["O1", "O2", "O3"])
    def test_o_levels_preserve_suite_semantics(self, region_suite, level):
        for region in region_suite[::11]:
            reference = self._interpret_region(region.module.clone(), region.function_name)
            optimized = apply_flag_sequence(region.module, pipeline(level), verify_each=True)
            result = self._interpret_region(optimized, region.function_name)
            assert result == pytest.approx(reference), region.name

    @given(st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=8, deadline=None)
    def test_random_sequences_preserve_semantics(self, seed):
        regions = build_suite(families=["lulesh"], limit=2)
        sequences = sample_flag_sequences(2, seed=seed)
        for region in regions:
            reference = self._interpret_region(region.module.clone(), region.function_name)
            for sequence in sequences:
                optimized = apply_flag_sequence(region.module, list(sequence), verify_each=True)
                result = self._interpret_region(optimized, region.function_name)
                assert result == pytest.approx(reference), (region.name, list(sequence))
