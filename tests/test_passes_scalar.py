"""Tests for the scalar optimization passes."""

import pytest

from repro.ir import (
    F64,
    I64,
    BasicBlock,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    assert_valid,
    const_float,
    const_int,
    parse_function,
    pointer_to,
    run_function,
)
from repro.passes import PassManager, available_passes, create_pass, run_passes
from repro.passes.constfold import fold_binary, fold_icmp
from repro.passes.cse import expression_key
from repro.passes.instcombine import simplify
from repro.ir.values import ConstantInt
from repro.ir.instructions import BinaryOp


def build_redundant_function():
    """Function with dead code, foldable constants and duplicate expressions."""
    module = Module("redundant")
    fn = Function("f", FunctionType(F64, [F64]), ["x"], module)
    block = BasicBlock("entry", fn)
    b = IRBuilder(block)
    c = b.add(const_int(2), const_int(3), "c")            # foldable
    dead = b.mul(c, const_int(7), "dead")                  # dead after fold
    a1 = b.fmul(fn.arguments[0], const_float(2.0), "a1")
    a2 = b.fmul(fn.arguments[0], const_float(2.0), "a2")   # duplicate of a1
    total = b.fadd(a1, a2, "total")
    plus_zero = b.fadd(total, const_float(0.0), "pz")      # instcombine target
    b.ret(plus_zero)
    return module, fn


class TestRegistry:
    def test_all_expected_passes_registered(self):
        names = available_passes()
        for expected in (
            "dce",
            "constfold",
            "constprop",
            "cse",
            "gvn",
            "instcombine",
            "reassociate",
            "simplifycfg",
            "licm",
            "loop-unroll",
            "inline",
            "mem2reg",
            "dse",
            "globalopt",
            "deadargelim",
            "deadfunc",
            "unreachable-block-elim",
        ):
            assert expected in names

    def test_unknown_pass_rejected(self):
        with pytest.raises(KeyError):
            create_pass("does-not-exist")

    def test_pass_manager_statistics(self):
        module, _ = build_redundant_function()
        pm = PassManager(["constfold", "dce"], verify_each=True)
        pm.run(module)
        assert pm.statistics.executed == ["constfold", "dce"]


class TestConstantFolding:
    def test_fold_binary_int(self):
        assert fold_binary("add", const_int(2), const_int(3), I64).value == 5
        assert fold_binary("mul", const_int(4), const_int(5), I64).value == 20
        assert fold_binary("sdiv", const_int(7), const_int(0), I64) is None

    def test_fold_binary_float(self):
        assert fold_binary("fadd", const_float(1.5), const_float(2.5), F64).value == 4.0

    def test_fold_icmp(self):
        assert fold_icmp("slt", const_int(1), const_int(2)).value == 1
        assert fold_icmp("eq", const_int(3), const_int(4)).value == 0

    def test_constfold_pass_replaces_uses(self):
        module, fn = build_redundant_function()
        run_passes(module, ["constfold", "dce"], verify_each=True)
        names = {inst.name for inst in fn.instructions()}
        assert "c" not in names          # folded and removed
        assert "dead" not in names       # dead after folding

    def test_constprop_collapses_redundant_phi(self):
        fn = parse_function(
            """
define i64 @f(i1 %c) {
entry:
  condbr %c, ^a, ^b
a:
  br ^merge
b:
  br ^merge
merge:
  %p = phi i64 [7:i64, ^a], [7:i64, ^b]
  ret %p
}
"""
        )
        module = fn.parent
        run_passes(module, ["constprop"], verify_each=True)
        assert not fn.block_named("merge").phis()


class TestInstCombine:
    def test_simplify_identities(self):
        x = const_int(11)
        assert simplify(BinaryOp("add", x, const_int(0))) is x
        assert simplify(BinaryOp("mul", x, const_int(1))) is x
        zero = simplify(BinaryOp("sub", x, x))
        assert isinstance(zero, ConstantInt) and zero.value == 0

    def test_instcombine_pass(self):
        module, fn = build_redundant_function()
        run_passes(module, ["instcombine", "dce"], verify_each=True)
        names = {inst.name for inst in fn.instructions()}
        assert "pz" not in names   # x + 0.0 simplified away

    def test_semantics_preserved(self):
        module, fn = build_redundant_function()
        before = run_function(fn, [1.5])
        run_passes(module, ["instcombine", "constfold", "cse", "dce"], verify_each=True)
        after = run_function(fn, [1.5])
        assert before == pytest.approx(after)

    def test_reassociate_moves_constants_right(self):
        module = Module("m")
        fn = Function("f", FunctionType(I64, [I64]), ["x"], module)
        block = BasicBlock("entry", fn)
        b = IRBuilder(block)
        v = b.add(const_int(3), fn.arguments[0], "v")
        b.ret(v)
        run_passes(module, ["reassociate"], verify_each=True)
        assert v.lhs is fn.arguments[0]
        assert isinstance(v.rhs, ConstantInt)


class TestCSE:
    def test_expression_key_commutative(self):
        x, y = const_int(3), const_int(4)
        a = BinaryOp("add", x, y)
        b = BinaryOp("add", y, x)
        assert expression_key(a) == expression_key(b)

    def test_local_cse_removes_duplicates(self):
        module, fn = build_redundant_function()
        before_count = fn.instruction_count()
        run_passes(module, ["cse"], verify_each=True)
        assert fn.instruction_count() == before_count - 1
        assert run_function(fn, [2.0]) == pytest.approx(8.0)

    def test_gvn_across_blocks(self):
        fn = parse_function(
            """
define i64 @f(i64 %x, i1 %c) {
entry:
  %a = mul i64 %x, %x
  condbr %c, ^left, ^right
left:
  %b = mul i64 %x, %x
  ret %b
right:
  ret %a
}
"""
        )
        module = fn.parent
        run_passes(module, ["gvn"], verify_each=True)
        names = {inst.name for inst in fn.instructions()}
        assert "b" not in names

    def test_gvn_does_not_merge_across_siblings(self):
        fn = parse_function(
            """
define i64 @f(i64 %x, i1 %c) {
entry:
  condbr %c, ^left, ^right
left:
  %a = mul i64 %x, %x
  ret %a
right:
  %b = mul i64 %x, %x
  ret %b
}
"""
        )
        module = fn.parent
        run_passes(module, ["gvn"], verify_each=True)
        names = {inst.name for inst in fn.instructions()}
        assert {"a", "b"} <= names


class TestMemoryPasses:
    def test_store_load_forwarding(self):
        fn = parse_function(
            """
define f64 @f(f64 %x) {
entry:
  %slot = alloca f64
  store f64 %x, %slot
  %v = load f64 %slot
  %twice = fadd f64 %v, %v
  ret %twice
}
"""
        )
        module = fn.parent
        run_passes(module, ["mem2reg", "dce"], verify_each=True)
        opcodes = [inst.opcode for inst in fn.instructions()]
        assert "load" not in opcodes
        assert run_function(fn, [2.5]) == pytest.approx(5.0)

    def test_forwarding_blocked_by_call(self):
        fn = parse_function(
            """
define f64 @f(f64 %x, f64* %p) {
entry:
  store f64 %x, %p
  call void @kmpc_barrier()
  %v = load f64 %p
  ret %v
}
"""
        )
        module = fn.parent
        run_passes(module, ["mem2reg"], verify_each=True)
        opcodes = [inst.opcode for inst in fn.instructions()]
        assert "load" in opcodes  # the call may have changed memory

    def test_dead_store_elimination(self):
        fn = parse_function(
            """
define void @f(f64* %p) {
entry:
  store f64 1.0:f64, %p
  store f64 2.0:f64, %p
  ret
}
"""
        )
        module = fn.parent
        run_passes(module, ["dse"], verify_each=True)
        stores = [inst for inst in fn.instructions() if inst.opcode == "store"]
        assert len(stores) == 1
        assert stores[0].value.value == 2.0


class TestModulePasses:
    def test_globalopt_marks_constants(self, dot_module):
        from repro.ir.values import GlobalVariable

        gv = GlobalVariable(F64, "gshared", const_float(1.0))
        dot_module.add_global(gv)
        run_passes(dot_module, ["globalopt"])
        assert gv.is_constant_global

    def test_deadargelim_annotates(self):
        fn = parse_function(
            """
define f64 @f(f64 %used, f64 %unused) {
entry:
  ret %used
}
"""
        )
        module = fn.parent
        run_passes(module, ["deadargelim"])
        assert "deadarg_unused" in fn.attributes
        assert "deadarg_used" not in fn.attributes

    def test_deadfunc_removes_uncalled_internal(self):
        module = Module("m")
        dead = Function("never", FunctionType(F64, []), [], module)
        dead.attributes.add("internal")
        block = BasicBlock("entry", dead)
        IRBuilder(block).ret(const_float(0.0))
        keep = Function("keep", FunctionType(F64, []), [], module)
        block2 = BasicBlock("entry", keep)
        IRBuilder(block2).ret(const_float(1.0))
        run_passes(module, ["deadfunc"])
        assert module.get_function("never") is None
        assert module.get_function("keep") is not None
