"""End-to-end integration tests of the reproduction pipeline and experiments."""

import numpy as np
import pytest

from repro.experiments import (
    fig3_region_errors,
    fig4_fold_errors,
    fig5_flag_sequence_speedups,
    fig7_label_counts,
    fig9_hybrid_per_region,
    fig10_input_size_losses,
    fig11_flag_selection_strategies,
    fig12_per_call_behaviour,
    headline_claims,
)
from repro.workloads import build_suite


class TestPipelineBuild:
    def test_build_artifacts(self, tiny_pipeline):
        assert len(tiny_pipeline.regions) == 18
        assert "skylake" in tiny_pipeline.machine_data
        assert tiny_pipeline.augmented is not None
        # one default + three sampled sequences per region
        assert len(tiny_pipeline.augmented.samples) == 18 * 4
        assert len(tiny_pipeline.sequence_names()) == 4

    def test_label_space_cached(self, tiny_pipeline):
        a = tiny_pipeline.label_space("skylake")
        b = tiny_pipeline.label_space("skylake")
        assert a is b
        assert a.num_labels <= 6


class TestEvaluation:
    def test_summary_covers_every_region(self, tiny_pipeline, tiny_evaluation):
        summary = tiny_evaluation.summary
        evaluated = {o.region for o in summary.outcomes}
        assert evaluated == set(tiny_pipeline.region_names())

    def test_speedups_are_bounded_by_full_exploration(self, tiny_evaluation):
        for outcome in tiny_evaluation.summary.outcomes:
            assert outcome.static_speedup <= outcome.full_exploration_speedup + 1e-9
            assert outcome.dynamic_speedup <= outcome.full_exploration_speedup + 1e-9
            assert outcome.hybrid_speedup <= outcome.full_exploration_speedup + 1e-9

    def test_errors_in_unit_range(self, tiny_evaluation):
        for outcome in tiny_evaluation.summary.outcomes:
            assert 0.0 <= outcome.static_error <= 1.0
            assert 0.0 <= outcome.dynamic_error <= 1.0

    def test_dynamic_model_beats_or_matches_static(self, tiny_evaluation):
        summary = tiny_evaluation.summary
        # the dynamic baseline sees the actual execution behaviour, so on
        # average it should not lose to the purely static model
        assert summary.dynamic_speedup >= summary.static_speedup - 0.05

    def test_fold_artifacts_consistent(self, tiny_evaluation):
        for fold in tiny_evaluation.folds:
            assert set(fold.static_predictions) == set(fold.validation_regions)
            assert set(fold.dynamic_predictions) == set(fold.validation_regions)
            assert fold.explored_sequence in fold.sequence_scores

    def test_per_fold_errors(self, tiny_evaluation):
        per_fold = tiny_evaluation.summary.per_fold_errors("static")
        assert len(per_fold) == len(tiny_evaluation.folds)
        assert all(0.0 <= v <= 1.0 for v in per_fold.values())


class TestExperimentDrivers:
    def test_fig3_rows(self, tiny_evaluation):
        rows = fig3_region_errors(tiny_evaluation)
        assert len(rows) == len(tiny_evaluation.summary.outcomes)
        assert rows[0]["static_error"] >= rows[-1]["static_error"]

    def test_fig4_series(self, tiny_evaluation):
        series = fig4_fold_errors(tiny_evaluation)
        assert set(series) == {"static", "dynamic"}

    def test_fig5_series(self, tiny_pipeline, tiny_evaluation):
        speedups = fig5_flag_sequence_speedups(tiny_pipeline, tiny_evaluation)
        assert "__explored__" in speedups
        assert len(speedups) >= len(tiny_pipeline.sequence_names())

    def test_fig7_counts(self, tiny_evaluation):
        counts = fig7_label_counts(tiny_evaluation)
        total = sum(counts["oracle"])
        assert total == len(tiny_evaluation.summary.outcomes)
        assert sum(counts["correct"]) <= sum(counts["predicted"])

    def test_fig9_rows(self, tiny_evaluation):
        rows = fig9_hybrid_per_region(tiny_evaluation)
        assert {"region", "dynamic_speedup", "hybrid_speedup", "full_exploration", "profiled"} <= set(rows[0])

    def test_fig10_input_sizes(self):
        regions = build_suite(families=["lulesh"], limit=4)
        rows = fig10_input_size_losses(regions, max_regions=4)
        assert len(rows) == 4
        for row in rows:
            assert row["speedup_size1_native"] + 1e-9 >= row["speedup_size2_config"]
            assert row["loss"] >= -1e-9

    def test_fig11_strategies(self, tiny_pipeline, tiny_evaluation):
        strategies = fig11_flag_selection_strategies(tiny_pipeline, tiny_evaluation)
        assert set(strategies) == {
            "explored_flag_seq",
            "overall_flag_seq",
            "predicted_flag_seq",
            "oracle_flag_seq",
        }
        assert strategies["oracle_flag_seq"] + 1e-9 >= strategies["explored_flag_seq"]

    def test_fig12_series(self, tiny_evaluation):
        series = fig12_per_call_behaviour(tiny_evaluation, num_regions=2)
        assert len(series) >= 2
        for values in series.values():
            assert all(v > 0 for v in values)

    def test_headline_claims(self, tiny_evaluation):
        claims = headline_claims(tiny_evaluation)
        assert claims["dynamic_speedup"] >= 1.0
        assert 0.0 <= claims["profiled_fraction"] <= 1.0
        assert claims["full_exploration_speedup"] >= claims["hybrid_speedup"] - 1e-9
