"""Tests for the multiprocess replica pool (:mod:`repro.serving.replica`).

Covers the picklable :class:`ReplicaConfig` (validation, per-slot path
derivations, desired-state snapshots), affinity-key determinism, end-to-end
parity of a two-replica pool against an in-process :class:`ModelHub`,
admin-op broadcast (load/alias/quarantine), honest cross-replica metric
merging (pooled percentiles from raw windows, never
percentiles-of-percentiles), per-replica journal isolation, and the
lifecycle machinery that is the whole point of the subsystem: SIGKILL a
worker mid-burst and nothing fails, recycle-after-N swaps PIDs without
pausing traffic, and a draining pool refuses new work with the right wire
error.

Process-spawning tests keep heartbeats fast (0.1–0.2 s) so failure
detection and recycling are observable inside a test timeout; everything
that can be asserted without spawning (config, affinity, wire-error
mapping) is.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.core import StaticConfigurationPredictor, StaticModelConfig
from repro.graphs import GraphBuilder, GraphEncoder
from repro.serving import (
    ArtifactRegistry,
    DeploymentNotFoundError,
    DeploymentQuarantinedError,
    DeploymentSpec,
    JournalReader,
    ModelHub,
    ServingApp,
    deployment_spec_to_dict,
    program_graph_to_dict,
)
from repro.serving.http import ERROR_CODES
from repro.serving.replica import (
    DrainingError,
    ReplicaConfig,
    ReplicaSupervisor,
    ReplicaUnavailableError,
    default_start_method,
    request_affinity_key,
)

NUM_LABELS = 4


def small_predictor(seed=3):
    """A small (untrained — weights are deterministic) predictor."""
    return StaticConfigurationPredictor(
        num_labels=NUM_LABELS,
        encoder=GraphEncoder(),
        config=StaticModelConfig(
            hidden_dim=8, graph_vector_dim=8, num_rgcn_layers=1, epochs=1, seed=seed
        ),
    )


@pytest.fixture(scope="module")
def raw_graphs(small_suite):
    builder = GraphBuilder()
    return [builder.build_module(region.module) for region in small_suite][:8]


@pytest.fixture(scope="module")
def registry_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("replica-registry")
    registry = ArtifactRegistry(root)
    registry.save("demo", small_predictor(seed=1))
    registry.save("shadow", small_predictor(seed=2))
    return str(root)


def demo_spec():
    return deployment_spec_to_dict(DeploymentSpec(name="demo", artifact="demo"))


def make_config(registry_root, **overrides):
    kwargs = dict(
        registry_root=registry_root,
        replicas=2,
        specs=(demo_spec(),),
        heartbeat_interval_s=0.2,
        heartbeat_timeout_s=10.0,
    )
    kwargs.update(overrides)
    return ReplicaConfig(**kwargs)


def wait_until(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


# ---------------------------------------------------------------- config


class TestReplicaConfig:
    def test_validation_rejects_nonsense(self, registry_root):
        with pytest.raises(ValueError, match="replicas"):
            make_config(registry_root, replicas=0)
        with pytest.raises(ValueError, match="recycle_after"):
            make_config(registry_root, recycle_after=0)
        with pytest.raises(ValueError, match="heartbeat_interval_s"):
            make_config(registry_root, heartbeat_interval_s=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            make_config(registry_root, max_retries=-1)
        with pytest.raises(ValueError, match="enable_cache"):
            make_config(
                registry_root, checkpoint_dir="/tmp/nowhere", enable_cache=False
            )

    def test_fork_is_banned(self, registry_root):
        # The supervisor is multithreaded; fork would inherit locks held
        # by reader/monitor threads that no longer exist in the child.
        with pytest.raises(ValueError, match="start_method"):
            make_config(registry_root, start_method="fork")

    def test_default_start_method_is_safe(self, registry_root):
        assert default_start_method() in ("forkserver", "spawn")
        config = make_config(registry_root)
        assert config.start_method == default_start_method()

    def test_per_slot_paths_are_disjoint_and_self_describing(self, registry_root):
        config = make_config(
            registry_root, journal_dir="/j", checkpoint_dir="/c"
        )
        assert config.slot_journal_dir(0) == os.path.join("/j", "replica-00")
        assert config.slot_journal_dir(7) == os.path.join("/j", "replica-07")
        assert config.slot_checkpoint_path(1) == os.path.join("/c", "replica-01.npz")
        bare = make_config(registry_root)
        assert bare.slot_journal_dir(0) is None
        assert bare.slot_checkpoint_path(0) is None

    def test_snapshot_for_spawn_carries_current_state_not_boot_state(
        self, registry_root
    ):
        config = make_config(registry_root)
        shadow = deployment_spec_to_dict(
            DeploymentSpec(name="shadow", artifact="shadow")
        )
        snap = config.snapshot_for_spawn(
            [demo_spec(), shadow], {"prod": "shadow"}, "shadow"
        )
        assert [spec["name"] for spec in snap.specs] == ["demo", "shadow"]
        assert snap.aliases == [("prod", "shadow")]
        assert snap.default == "shadow"
        # The boot config itself is untouched.
        assert [spec["name"] for spec in config.specs] == ["demo"]


# -------------------------------------------------------------- affinity


class TestAffinityKey:
    def test_key_is_deterministic_per_graph(self, raw_graphs):
        for graph in raw_graphs:
            assert request_affinity_key(graph) == request_affinity_key(graph)

    def test_distinct_graphs_get_distinct_keys(self, raw_graphs):
        keys = {request_affinity_key(graph) for graph in raw_graphs}
        assert len(keys) == len(raw_graphs)

    def test_non_graph_requests_have_no_key(self):
        assert request_affinity_key(object()) is None


# ------------------------------------------------------ pool round-trips


@pytest.fixture(scope="module")
def pool(registry_root, tmp_path_factory):
    scratch = tmp_path_factory.mktemp("replica-pool")
    config = make_config(
        registry_root,
        journal_dir=str(scratch / "journal"),
        checkpoint_dir=str(scratch / "ckpt"),
        checkpoint_interval_s=0.3,
    )
    supervisor = ReplicaSupervisor(config)
    supervisor.start()
    yield supervisor
    supervisor.stop()


class TestPoolServing:
    def test_predictions_match_an_in_process_hub(
        self, pool, registry_root, raw_graphs
    ):
        hub = ModelHub(registry_root)
        hub.load(DeploymentSpec(name="demo", artifact="demo"))
        expected = [r.label for r in hub.predict_many("demo", raw_graphs)]
        hub.stop()

        single = [pool.predict("demo", graph).label for graph in raw_graphs]
        batched = [r.label for r in pool.predict_many("demo", raw_graphs)]
        assert single == expected
        assert batched == expected

    def test_submit_returns_a_future(self, pool, raw_graphs):
        future = pool.submit("demo", raw_graphs[0])
        assert future.result(timeout=30).label in range(NUM_LABELS)

    def test_hub_like_introspection_surface(self, pool):
        assert pool.names() == ["demo"]
        assert "demo" in pool
        assert len(pool) == 1
        assert pool.default_name == "demo"
        description = pool.describe()
        assert description["service"] == "replica-pool"
        assert len(description["replicas"]) == 2
        health = pool.model_health("demo")
        assert health["model"]["name"] == "demo"

    def test_unknown_model_raises_not_found(self, pool, raw_graphs):
        with pytest.raises(DeploymentNotFoundError):
            pool.predict("nope", raw_graphs[0])

    def test_admin_ops_broadcast_to_every_replica(self, pool, raw_graphs):
        pool.load(DeploymentSpec(name="shadow", artifact="shadow"))
        try:
            assert sorted(pool.names()) == ["demo", "shadow"]
            assert pool.predict("shadow", raw_graphs[0]).label in range(NUM_LABELS)
            pool.alias("prod", "shadow")
            assert pool.aliases() == {"prod": "shadow"}
            assert pool.predict("prod", raw_graphs[0]).label in range(NUM_LABELS)
            pool.quarantine("shadow", "bad canary")
            assert pool.quarantined() == {"shadow": "bad canary"}
            with pytest.raises(DeploymentQuarantinedError):
                pool.predict("shadow", raw_graphs[0])
            pool.unquarantine("shadow")
            assert pool.predict("shadow", raw_graphs[0]).label in range(NUM_LABELS)
        finally:
            pool.unalias("prod")
            pool.unload("shadow")
        assert pool.names() == ["demo"]

    def test_snapshot_merges_from_raw_windows(self, pool, raw_graphs):
        pool.predict_many("demo", raw_graphs)
        snapshot = pool.snapshot()
        aggregate = snapshot["aggregate"]
        assert aggregate["latency"]["merged_from_raw_windows"] is True
        assert aggregate["latency"]["samples"] >= len(raw_graphs)
        assert aggregate["total_requests"] >= len(raw_graphs)
        # Per-replica infrastructure lives under "replicas", keyed by slot.
        assert sorted(snapshot["replicas"]) == ["0", "1"]
        per_model = snapshot["models"]["demo"]
        assert per_model["latency"]["merged_from_raw_windows"] is True
        # The pool itself owns no in-process infrastructure.
        assert snapshot["cache"] is None and snapshot["pool"] is None

    def test_capacity_report_sums_across_replicas(self, pool):
        report = pool.capacity_report()
        assert report["replicas"] == {"ready": 2, "total": 2}
        assert "demo" in report["models"]
        assert set(report["models"]["demo"]["replicas"]) == {"0", "1"}

    def test_http_app_serves_the_pool(self, pool, raw_graphs):
        app = ServingApp(pool)
        status, payload, _ = app.handle("GET", "/v1/models")
        assert status == 200
        assert "demo" in payload["models"]

        body = json.dumps({"graph": program_graph_to_dict(raw_graphs[0])}).encode()
        status, payload, _ = app.handle("POST", "/v1/models/demo/predict", body)
        assert status == 200
        assert payload["result"]["label"] in range(NUM_LABELS)

        status, payload, _ = app.handle("GET", "/metrics")
        assert status == 200
        assert payload["hub"]["aggregate"]["latency"]["merged_from_raw_windows"] is True
        status, text, _ = app.handle("GET", "/metrics?format=prometheus")
        assert status == 200 and "repro_" in text

        status, payload, _ = app.handle("GET", "/v1/capacity")
        assert status == 200
        assert payload["replicas"] == {"ready": 2, "total": 2}

    def test_slot_checkpoints_appear_on_disk(self, pool):
        ckpt_dir = pool._config.checkpoint_dir
        assert wait_until(
            lambda: sorted(os.listdir(ckpt_dir))
            == ["replica-00.npz", "replica-01.npz"]
        ), os.listdir(ckpt_dir)


# ------------------------------------------------- journals and affinity


class TestJournalIsolation:
    def test_per_replica_journals_and_affinity_routing(
        self, registry_root, raw_graphs, tmp_path
    ):
        journal_root = tmp_path / "journal"
        config = make_config(registry_root, journal_dir=str(journal_root))
        repeats = 3
        with ReplicaSupervisor(config) as pool:
            for _ in range(repeats):
                for graph in raw_graphs[:4]:
                    pool.predict("demo", graph)

        # One subdirectory per slot; two writers never share a segment.
        assert sorted(os.listdir(journal_root)) == ["replica-00", "replica-01"]

        per_slot = {
            slot: [
                record["fingerprint"]
                for record in JournalReader(str(journal_root / slot)).records()
            ]
            for slot in ("replica-00", "replica-01")
        }
        total = sum(len(prints) for prints in per_slot.values())
        assert total == repeats * 4

        # Affinity: every repeat of a graph landed on the same replica.
        for fingerprint in {f for prints in per_slot.values() for f in prints}:
            hit_slots = [
                slot for slot, prints in per_slot.items() if fingerprint in prints
            ]
            assert len(hit_slots) == 1, fingerprint

        # A reader over the *root* unifies the pool's journals.
        merged = list(JournalReader(str(journal_root)).records())
        assert len(merged) == total


# ------------------------------------------------------------- lifecycle


def run_burst(pool, graphs, per_thread, threads):
    """Hammer the pool from several threads; return (labels, errors)."""
    labels, errors = [], []

    def worker():
        for i in range(per_thread):
            try:
                labels.append(pool.predict("demo", graphs[i % len(graphs)]).label)
            except Exception as exc:  # noqa: BLE001 - the test wants them all
                errors.append(exc)

    pack = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pack:
        thread.start()
    return pack, labels, errors


class TestFailover:
    def test_sigkill_mid_burst_fails_zero_requests(
        self, registry_root, raw_graphs
    ):
        config = make_config(registry_root, heartbeat_interval_s=0.1)
        with ReplicaSupervisor(config) as pool:
            victim = pool.replica_status()[0]["pid"]
            pack, labels, errors = run_burst(
                pool, raw_graphs, per_thread=30, threads=4
            )
            time.sleep(0.1)
            os.kill(victim, signal.SIGKILL)
            for thread in pack:
                thread.join(timeout=60)
            # A dying worker fails zero requests: every in-flight call was
            # transparently retried on the surviving replica.
            assert errors == []
            assert len(labels) == 120

            # The killed slot comes back with a fresh PID.
            assert wait_until(
                lambda: victim
                not in {s["pid"] for s in pool.replica_status()}
                and all(s["state"] == "ready" for s in pool.replica_status())
            ), pool.replica_status()
            assert pool.predict("demo", raw_graphs[0]).label in range(NUM_LABELS)

    def test_recycle_after_n_swaps_pids_without_pausing_traffic(
        self, registry_root, raw_graphs
    ):
        config = make_config(
            registry_root, recycle_after=5, heartbeat_interval_s=0.1
        )
        with ReplicaSupervisor(config) as pool:
            before = {s["slot"]: s["pid"] for s in pool.replica_status()}
            pack, labels, errors = run_burst(
                pool, raw_graphs, per_thread=15, threads=2
            )
            for thread in pack:
                thread.join(timeout=60)
            assert errors == []
            assert len(labels) == 30

            # At least one slot crossed the threshold; its replacement was
            # made ready *before* the old worker drained.
            def some_slot_recycled():
                status = pool.replica_status()
                return any(
                    s["state"] == "ready" and before[s["slot"]] != s["pid"]
                    for s in status
                )

            assert wait_until(some_slot_recycled), pool.replica_status()
            generations = {
                s["slot"]: s["generation"] for s in pool.replica_status()
            }
            assert any(generation > 1 for generation in generations.values())
            assert pool.predict("demo", raw_graphs[0]).label in range(NUM_LABELS)


# ------------------------------------------------------------ wire errors


class TestWireErrors:
    def test_error_codes_document_the_replica_states(self):
        assert "draining" in ERROR_CODES
        assert "replica-unavailable" in ERROR_CODES

    def test_draining_pool_refuses_new_work_with_503(
        self, registry_root, raw_graphs
    ):
        config = make_config(registry_root, replicas=1)
        pool = ReplicaSupervisor(config)
        pool.start()
        app = ServingApp(pool)
        pool.stop()

        with pytest.raises(DrainingError):
            pool.predict("demo", raw_graphs[0])
        body = json.dumps({"graph": program_graph_to_dict(raw_graphs[0])}).encode()
        status, payload, _ = app.handle("POST", "/v1/models/demo/predict", body)
        assert status == 503
        assert payload["error"]["code"] == "draining"
        # stop() is idempotent.
        pool.stop()

    def test_replica_unavailable_maps_to_503(
        self, registry_root, raw_graphs, monkeypatch
    ):
        # No processes needed: an unstarted supervisor resolves names
        # locally, and the dispatch layer is stubbed to report exhaustion.
        pool = ReplicaSupervisor(make_config(registry_root))

        def exhausted(*args, **kwargs):
            raise ReplicaUnavailableError("no ready replica after 3 attempts")

        monkeypatch.setattr(pool, "predict_many", exhausted)
        app = ServingApp(pool)
        body = json.dumps({"graph": program_graph_to_dict(raw_graphs[0])}).encode()
        status, payload, _ = app.handle("POST", "/v1/models/demo/predict", body)
        assert status == 503
        assert payload["error"]["code"] == "replica-unavailable"
        assert "retry" in ERROR_CODES["replica-unavailable"]
