"""The replica wire contract, end to end.

Two halves of the same promise:

* every ``_KINDS`` entry round-trips through the exception codec as the
  *same* type with the same message (and ``retry_after_s`` survives for
  admission sheds) — the supervisor re-raises what the worker raised,
  not a lookalike;
* the HTTP layer cannot tell the difference: for every wire error kind,
  an exception that crossed the replica pipe maps to exactly the status,
  error code, and headers the in-process exception maps to.  This is the
  invariant that makes replica serving a drop-in deployment change
  rather than an API change.

The ``exception-codec`` lint rule keeps ``_KINDS`` complete and ordered;
these tests keep it *behaviorally* true.
"""

import pytest

from repro.serving.costmodel import OverCapacityError
from repro.serving.http import ServingApp
from repro.serving.hub import ModelHub
from repro.serving.replica.transport import (
    _KINDS,
    WIRE_TYPES,
    decode_exception,
    encode_exception,
)
from repro.serving.replica.config import ReplicaError

KIND_IDS = [kind for kind, _ in _KINDS]


def make_instance(exc_type):
    if exc_type is OverCapacityError:
        return exc_type("admission budget exhausted", retry_after_s=2.5)
    return exc_type("boom across the pipe")


class TestCodecRoundTrip:
    @pytest.mark.parametrize("kind,exc_type", list(_KINDS), ids=KIND_IDS)
    def test_every_kind_round_trips_as_the_same_type(self, kind, exc_type):
        exc = make_instance(exc_type)
        payload = encode_exception(exc)
        # Subclass-before-base ordering is what makes this exact: the
        # most specific kind must win the isinstance scan.
        assert payload["kind"] == kind
        decoded = decode_exception(payload)
        assert type(decoded) is exc_type
        assert str(decoded) == str(exc)

    def test_retry_after_survives_the_pipe(self):
        exc = OverCapacityError("shed", retry_after_s=2.5)
        decoded = decode_exception(encode_exception(exc))
        assert isinstance(decoded, OverCapacityError)
        assert decoded.retry_after_s == pytest.approx(2.5)

    def test_kinds_are_unique(self):
        kinds = [kind for kind, _ in _KINDS]
        assert len(kinds) == len(set(kinds))

    def test_unknown_worker_type_decodes_as_replica_failure(self):
        payload = encode_exception(RuntimeError("worker exploded"))
        assert payload["kind"] == "internal"
        decoded = decode_exception(payload)
        assert isinstance(decoded, ReplicaError)
        assert "worker exploded" in str(decoded)

    def test_wire_types_are_declared_and_importable(self):
        # The pickle-safety lint rule audits these classes; the tuple
        # itself must stay non-empty and hold real types.
        assert WIRE_TYPES
        assert all(isinstance(entry, type) for entry in WIRE_TYPES)


class TestHttpStatusParity:
    def _response_for(self, exc):
        app = ServingApp(ModelHub(enable_cache=False))

        def view(body):
            raise exc

        app._route = lambda path, query=None: {"GET": view}
        return app.handle("GET", "/healthz")

    @pytest.mark.parametrize("kind,exc_type", list(_KINDS), ids=KIND_IDS)
    def test_remote_error_maps_to_same_response_as_local(self, kind, exc_type):
        local = make_instance(exc_type)
        remote = decode_exception(encode_exception(local))
        local_status, local_payload, local_headers = self._response_for(local)
        remote_status, remote_payload, remote_headers = self._response_for(remote)
        assert remote_status == local_status
        assert (
            remote_payload["error"]["code"] == local_payload["error"]["code"]
        )
        assert remote_headers == local_headers

    def test_over_capacity_keeps_retry_after_header_across_the_pipe(self):
        exc = decode_exception(
            encode_exception(OverCapacityError("shed", retry_after_s=2.5))
        )
        status, payload, headers = self._response_for(exc)
        assert status == 429
        assert payload["error"]["code"] == "over-capacity"
        assert "Retry-After" in headers
