"""Tests for the online serving subsystem: registry, cache, batcher, service."""

import numpy as np
import pytest

from repro.core import (
    HybridModelConfig,
    HybridStaticDynamicClassifier,
    StaticConfigurationPredictor,
    StaticModelConfig,
)
from repro.graphs import GraphBuilder, GraphEncoder, graph_fingerprint
from repro.serving import (
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactRegistry,
    EmbeddingCache,
    MicroBatcher,
    PredictionService,
    ServiceConfig,
    ServingStats,
    configuration_from_dict,
    configuration_to_dict,
    label_space_from_dict,
    label_space_to_dict,
)

NUM_LABELS = 4


@pytest.fixture(scope="module")
def predictor():
    """A small (untrained — weights are deterministic) predictor."""
    return StaticConfigurationPredictor(
        num_labels=NUM_LABELS,
        encoder=GraphEncoder(),
        config=StaticModelConfig(
            hidden_dim=8, graph_vector_dim=8, num_rgcn_layers=1, epochs=1, seed=3
        ),
    )


@pytest.fixture(scope="module")
def fitted_hybrid():
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(24, 8))
    errors = rng.uniform(0.0, 0.5, size=24)
    hybrid = HybridStaticDynamicClassifier(HybridModelConfig(use_ga_selection=False))
    hybrid.fit(vectors, errors)
    return hybrid


@pytest.fixture(scope="module")
def sample_graphs(small_suite):
    builder = GraphBuilder()
    encoder = GraphEncoder()
    return [encoder.encode(builder.build_module(region.module)) for region in small_suite]


@pytest.fixture(scope="module")
def label_space(tiny_evaluation):
    return tiny_evaluation.label_space


# ---------------------------------------------------------------- registry


class TestSerialization:
    def test_configuration_round_trip(self, label_space):
        for configuration in label_space.configurations:
            data = configuration_to_dict(configuration)
            assert configuration_from_dict(data) == configuration

    def test_label_space_round_trip(self, label_space):
        restored = label_space_from_dict(label_space_to_dict(label_space))
        assert restored.machine_name == label_space.machine_name
        assert restored.configurations == label_space.configurations
        assert restored.num_labels == label_space.num_labels

    def test_hybrid_round_trip(self, fitted_hybrid):
        restored = HybridStaticDynamicClassifier.from_dict(fitted_hybrid.to_dict())
        rng = np.random.default_rng(7)
        probes = rng.normal(size=(40, 8))
        assert np.array_equal(
            restored.needs_dynamic(probes), fitted_hybrid.needs_dynamic(probes)
        )
        assert restored.config == fitted_hybrid.config
        assert restored.selected_dimensions == fitted_hybrid.selected_dimensions


class TestArtifactRegistry:
    def test_save_load_round_trip(self, tmp_path, predictor, sample_graphs, fitted_hybrid):
        registry = ArtifactRegistry(tmp_path)
        ref = registry.save("model", predictor, hybrid=fitted_hybrid)
        assert ref.version == "v0001"

        artifact = registry.load("model")
        rebuilt = artifact.build_predictor()
        original = predictor.predict_label_for_graphs(sample_graphs)
        restored = rebuilt.predict_label_for_graphs(sample_graphs)
        assert np.array_equal(original, restored)
        assert artifact.hybrid is not None
        assert artifact.num_labels == NUM_LABELS
        # Vocabulary round-trips exactly.
        assert artifact.encoder.vocabulary.tokens == predictor.encoder.vocabulary.tokens

    def test_versioning_monotonic(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        first = registry.save("model", predictor)
        second = registry.save("model", predictor)
        assert (first.version, second.version) == ("v0001", "v0002")
        assert registry.versions("model") == ["v0001", "v0002"]
        assert registry.latest_version("model") == "v0002"
        assert registry.names() == ["model"]
        assert registry.load("model").ref.version == "v0002"
        assert registry.load("model", "v0001").ref.version == "v0001"

    def test_missing_artifact_raises(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(ArtifactNotFoundError):
            registry.load("nope")
        with pytest.raises(ArtifactNotFoundError):
            registry.load("nope", "v0001")

    def test_load_rejects_traversal_and_staging_versions(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        ref = registry.save("model", predictor)
        # Name/version are path components: separators, dot-prefixes and
        # non-"vNNNN" versions (e.g. a torn staging dir) must not resolve.
        for name in ("../model", "a/b", "a\\b", ".hidden", ""):
            with pytest.raises(ArtifactNotFoundError):
                registry.load(name)
        for version in ("../v0001", f"{ref.version}.staging-1-aa", "latest"):
            with pytest.raises(ArtifactNotFoundError):
                registry.load("model", version)

    def test_checksum_mismatch_detected(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        ref = registry.save("model", predictor)
        vocab_path = tmp_path / "model" / ref.version / "vocabulary.json"
        vocab_path.write_text(vocab_path.read_text() + "\n")
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            registry.load("model")
        # Unverified loads still work (explicit opt-out).
        assert registry.load("model", verify=False) is not None

    def test_missing_file_detected(self, tmp_path, predictor, fitted_hybrid):
        registry = ArtifactRegistry(tmp_path)
        ref = registry.save("model", predictor, hybrid=fitted_hybrid)
        (tmp_path / "model" / ref.version / "hybrid.json").unlink()
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            registry.verify("model")

    def test_invalid_name_rejected(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        for bad in ("", ".hidden", "a/b", "a\\b"):
            with pytest.raises(ValueError):
                registry.save(bad, predictor)

    def test_torn_staging_dir_is_invisible(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        registry.save("model", predictor)
        # Simulate a save killed between writing the manifest and the atomic
        # rename: a complete-looking "*.staging" directory is left behind.
        staging = tmp_path / "model" / "v0002.staging"
        staging.mkdir()
        (staging / "manifest.json").write_text("{}")
        assert registry.versions("model") == ["v0001"]
        assert registry.save("model", predictor).version == "v0002"

    def test_versions_sort_numerically_past_v9999(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        for version in ("v9999", "v10000"):
            directory = tmp_path / "model" / version
            directory.mkdir(parents=True)
            (directory / "manifest.json").write_text("{}")
        assert registry.versions("model") == ["v9999", "v10000"]
        assert registry.latest_version("model") == "v10000"
        assert registry.save("model", predictor).version == "v10001"


# ----------------------------------------------------------------- caching


class TestEmbeddingCache:
    def test_lru_eviction_order(self):
        cache = EmbeddingCache(capacity=2)
        for key in ("a", "b"):
            cache.put(key, np.zeros(2), np.zeros(3))
        assert cache.get("a") is not None  # promotes "a"
        cache.put("c", np.ones(2), np.ones(3))  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_entries_are_isolated_copies(self):
        cache = EmbeddingCache(capacity=4)
        logits = np.array([1.0, 2.0])
        cache.put("k", logits, np.zeros(2))
        logits[0] = 99.0
        entry = cache.get("k")
        assert entry.logits[0] == 1.0

    def test_stats(self):
        cache = EmbeddingCache(capacity=4)
        cache.put("k", np.zeros(1), np.zeros(1))
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 1.0
        assert stats["hit_rate"] == 0.5


class TestServingStats:
    def test_counters_and_percentiles(self):
        stats = ServingStats(latency_window=16)
        for latency in (0.01, 0.02, 0.03, 0.04):
            stats.record_request(latency, cache_hit=latency > 0.02)
        stats.record_batch(2)
        stats.record_batch(2)
        snapshot = stats.snapshot()
        assert snapshot["total_requests"] == 4
        assert snapshot["cache_hits"] == 2
        assert snapshot["cache_hit_rate"] == 0.5
        assert snapshot["batch_histogram"] == {2: 2}
        assert snapshot["mean_batch_size"] == 2.0
        assert 0.01 <= snapshot["latency_p50_s"] <= 0.04
        assert snapshot["latency_p95_s"] >= snapshot["latency_p50_s"]
        assert snapshot["qps"] > 0


# ----------------------------------------------------------------- batcher


class TestMicroBatcher:
    def test_batches_respect_max_size_and_order(self):
        batches = []

        def runner(items):
            batches.append(len(items))
            return [item * 10 for item in items]

        batcher = MicroBatcher(runner, max_batch_size=4, max_wait_s=0.01)
        futures = [batcher.submit(i) for i in range(10)]
        with batcher:
            results = [future.result(timeout=5) for future in futures]
        assert results == [i * 10 for i in range(10)]
        assert batches[0] == 4  # pre-start queue drains in full batches
        assert sum(batches) == 10
        assert all(size <= 4 for size in batches)

    def test_runner_exception_propagates(self):
        def runner(items):
            raise RuntimeError("boom")

        with MicroBatcher(runner, max_batch_size=2, max_wait_s=0.001) as batcher:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=5)

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(lambda items: items, max_batch_size=2)
        batcher.start()
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(1)

    def test_close_without_start_fails_queued_futures(self):
        batcher = MicroBatcher(lambda items: items, max_batch_size=2)
        future = batcher.submit(1)
        batcher.close()
        with pytest.raises(RuntimeError, match="before start"):
            future.result(timeout=5)

    def test_started_close_drains_queue(self):
        import time as time_module

        def slow_runner(items):
            time_module.sleep(0.02)
            return items

        batcher = MicroBatcher(slow_runner, max_batch_size=1, max_wait_s=0.0)
        futures = [batcher.submit(i) for i in range(4)]
        batcher.start()
        # Even with a join timeout shorter than the drain, queued futures
        # must be served by the live worker, not failed spuriously.
        batcher.close(timeout=0.01)
        assert [future.result(timeout=5) for future in futures] == [0, 1, 2, 3]

    def test_cancelled_future_does_not_kill_the_batcher(self):
        batcher = MicroBatcher(lambda items: [i * 10 for i in items], max_batch_size=4)
        doomed = batcher.submit(1)
        assert doomed.cancel()  # cancelled while queued, before start
        survivor = batcher.submit(2)
        with batcher:
            # The thread must skip the cancelled future and keep serving.
            assert survivor.result(timeout=5) == 20
            late = batcher.submit(3)
            assert late.result(timeout=5) == 30

    def test_result_count_mismatch_is_an_error(self):
        with MicroBatcher(lambda items: [], max_batch_size=2, max_wait_s=0.001) as batcher:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="results"):
                future.result(timeout=5)


# ----------------------------------------------------------------- service


def make_service(predictor, **overrides):
    defaults = dict(max_batch_size=32, max_wait_s=0.02, cache_capacity=64)
    defaults.update(overrides)
    return PredictionService(
        model=predictor.model,
        encoder=predictor.encoder,
        config=ServiceConfig(**defaults),
    )


class TestPredictionService:
    def test_service_config_validates_knobs(self):
        for bad in (
            dict(max_batch_size=0),
            dict(max_batch_size=-1),
            dict(max_wait_s=-0.1),
            dict(cache_capacity=0),
            dict(latency_window=0),
        ):
            with pytest.raises(ValueError):
                ServiceConfig(**bad)

    def test_micro_batched_identical_to_per_request(self, predictor, sample_graphs):
        service = make_service(predictor, enable_cache=False)
        batched = service.predict_many(sample_graphs)
        singles = [service.predict(graph) for graph in sample_graphs]
        for one, many in zip(singles, batched):
            assert one.label == many.label
            assert np.allclose(one.probabilities, many.probabilities)
            assert np.allclose(one.graph_vector, many.graph_vector)
            assert one.fingerprint == many.fingerprint

    def test_cache_hit_on_repeat(self, predictor, sample_graphs):
        service = make_service(predictor)
        first = service.predict(sample_graphs[0])
        second = service.predict(sample_graphs[0])
        assert not first.cache_hit
        assert second.cache_hit
        assert second.label == first.label
        assert np.array_equal(second.probabilities, first.probabilities)
        assert np.array_equal(second.graph_vector, first.graph_vector)
        assert service.cache.hits == 1
        assert service.stats.cache_hit_rate == 0.5
        # The hit did not trigger another forward pass.
        assert service.stats.total_batches == 1

    def test_duplicates_within_one_call_share_one_forward(self, predictor, sample_graphs):
        service = make_service(predictor, enable_cache=False)
        graph = sample_graphs[0]
        results = service.predict_many([graph, graph, graph])
        assert service.stats.total_batches == 1
        assert service.stats.batch_histogram == {1: 1}
        assert len({result.label for result in results}) == 1
        assert np.array_equal(results[0].probabilities, results[2].probabilities)

    def test_duplicates_do_not_inflate_cache_misses(self, predictor, sample_graphs):
        service = make_service(predictor)
        graph = sample_graphs[0]
        service.predict_many([graph, graph, graph])
        # One real miss; the two duplicates piggyback on the pending forward.
        assert service.cache.misses == 1
        assert service.predict(graph).cache_hit
        assert service.cache.hit_rate == 0.5

    def test_chunks_respect_max_batch_size(self, predictor, sample_graphs):
        service = make_service(predictor, enable_cache=False, max_batch_size=5)
        service.predict_many(sample_graphs)  # 12 distinct graphs -> 5 + 5 + 2
        assert service.stats.total_batches == 3
        assert service.stats.batch_histogram == {5: 2, 2: 1}

    def test_accepts_raw_program_graph(self, predictor, small_suite):
        service = make_service(predictor)
        program_graph = GraphBuilder().build_module(small_suite[0].module)
        encoded = predictor.encoder.encode(program_graph)
        result = service.predict(program_graph)
        assert result.fingerprint == graph_fingerprint(encoded)

    def test_rejects_unknown_request_type(self, predictor):
        service = make_service(predictor)
        with pytest.raises(TypeError):
            service.predict("not a graph")

    def test_no_label_space_means_no_configuration(self, predictor, sample_graphs):
        service = make_service(predictor)
        result = service.predict(sample_graphs[0])
        assert result.configuration is None
        assert result.needs_profiling is None

    def test_hybrid_and_label_space_attached(
        self, predictor, sample_graphs, label_space, fitted_hybrid
    ):
        service = PredictionService(
            model=predictor.model,
            encoder=predictor.encoder,
            label_space=label_space,
            hybrid=fitted_hybrid,
        )
        result = service.predict(sample_graphs[0])
        assert result.configuration == label_space.configuration_of(result.label)
        assert isinstance(result.needs_profiling, bool)

    def test_submit_rejects_bad_type_before_batching(self, predictor, sample_graphs):
        # Invalid requests must fail at submit time instead of poisoning a
        # whole micro-batch of valid concurrent requests.
        service = make_service(predictor)
        with pytest.raises(TypeError):
            service.submit("not a graph")
        future = service.submit(sample_graphs[0])
        with service:
            assert future.result(timeout=10).name == sample_graphs[0].name

    def test_submit_after_stop_restarts_batcher(self, predictor, sample_graphs):
        service = make_service(predictor)
        with service:
            service.submit(sample_graphs[0]).result(timeout=10)
        # After stop(), a started service transparently restarts on demand
        # rather than queueing into a batcher that never runs.
        future = service.submit(sample_graphs[1])
        assert future.result(timeout=10).label == service.predict(sample_graphs[1]).label
        service.stop()

    def test_async_submit_matches_sync_and_batches(self, predictor, sample_graphs):
        sync_service = make_service(predictor, enable_cache=False)
        expected = [result.label for result in sync_service.predict_many(sample_graphs)]

        service = make_service(predictor, enable_cache=False, max_wait_s=0.05)
        futures = [service.submit(graph) for graph in sample_graphs]
        with service:
            results = [future.result(timeout=10) for future in futures]
        assert [result.label for result in results] == expected
        # The pre-start queue was answered in one micro-batch.
        assert service.stats.total_batches == 1
        assert service.stats.batch_histogram == {len(sample_graphs): 1}


# -------------------------------------------------------------- end-to-end


class TestEndToEnd:
    def test_train_export_reload_serve(self, tiny_pipeline, tiny_evaluation, tmp_path):
        """Acceptance: train -> export -> reload -> identical predictions."""
        refs = tiny_pipeline.export_artifacts(tiny_evaluation, tmp_path, name="e2e")
        assert len(refs) == len(tiny_evaluation.folds)
        registry = ArtifactRegistry(tmp_path)

        for fold, ref in zip(tiny_evaluation.folds, refs):
            registry.verify(ref.name)
            samples = tiny_pipeline.region_samples(
                fold.validation_regions, fold.explored_sequence
            )
            graphs = [sample.graph for sample in samples]
            if not graphs:
                continue
            in_memory = fold.predictor.predict_label_for_graphs(graphs)

            service = PredictionService.from_registry(tmp_path, ref.name)
            served = service.predict_many(graphs)
            assert np.array_equal(in_memory, np.array([r.label for r in served]))
            # Per-request path agrees with the micro-batched path.
            service.cache.clear()
            singles = [service.predict(graph) for graph in graphs]
            assert [r.label for r in singles] == [r.label for r in served]
            # The exported label space maps labels onto real configurations.
            for result in served:
                expected = tiny_evaluation.label_space.configuration_of(result.label)
                assert result.configuration == expected

    def test_exported_metadata_describes_fold(self, tiny_pipeline, tiny_evaluation, tmp_path):
        refs = tiny_pipeline.export_artifacts(
            tiny_evaluation, tmp_path, name="meta", folds=[tiny_evaluation.folds[0].fold]
        )
        assert len(refs) == 1
        artifact = ArtifactRegistry(tmp_path).load(refs[0].name)
        metadata = artifact.manifest["metadata"]
        fold = tiny_evaluation.folds[0]
        assert metadata["machine"] == tiny_evaluation.machine_name
        assert metadata["fold"] == fold.fold
        assert metadata["explored_sequence"] == fold.explored_sequence
        assert set(metadata["validation_regions"]) == set(fold.validation_regions)
