"""Tests for the online serving subsystem: registry, cache, batcher, service."""

import os
import threading

import numpy as np
import pytest

from repro.core import (
    HybridModelConfig,
    HybridStaticDynamicClassifier,
    StaticConfigurationPredictor,
    StaticModelConfig,
)
from repro.graphs import GraphBuilder, GraphEncoder, graph_fingerprint
from repro.serving import (
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactRegistry,
    EmbeddingCache,
    EnsembleConfig,
    EnsemblePredictionService,
    MicroBatcher,
    PredictionService,
    SerializationError,
    ServiceConfig,
    ServingStats,
    combine_majority_vote,
    combine_mean_softmax,
    configuration_from_dict,
    configuration_to_dict,
    label_space_from_dict,
    label_space_to_dict,
    vocabulary_from_dict,
)

NUM_LABELS = 4


def small_predictor(num_labels=NUM_LABELS, seed=3, graph_vector_dim=8):
    """A small (untrained — weights are deterministic) predictor."""
    return StaticConfigurationPredictor(
        num_labels=num_labels,
        encoder=GraphEncoder(),
        config=StaticModelConfig(
            hidden_dim=8,
            graph_vector_dim=graph_vector_dim,
            num_rgcn_layers=1,
            epochs=1,
            seed=seed,
        ),
    )


@pytest.fixture(scope="module")
def predictor():
    return small_predictor()


@pytest.fixture(scope="module")
def fitted_hybrid():
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(24, 8))
    errors = rng.uniform(0.0, 0.5, size=24)
    hybrid = HybridStaticDynamicClassifier(HybridModelConfig(use_ga_selection=False))
    hybrid.fit(vectors, errors)
    return hybrid


@pytest.fixture(scope="module")
def sample_graphs(small_suite):
    builder = GraphBuilder()
    encoder = GraphEncoder()
    return [encoder.encode(builder.build_module(region.module)) for region in small_suite]


@pytest.fixture(scope="module")
def label_space(tiny_evaluation):
    return tiny_evaluation.label_space


# ---------------------------------------------------------------- registry


class TestSerialization:
    def test_configuration_round_trip(self, label_space):
        for configuration in label_space.configurations:
            data = configuration_to_dict(configuration)
            assert configuration_from_dict(data) == configuration

    def test_label_space_round_trip(self, label_space):
        restored = label_space_from_dict(label_space_to_dict(label_space))
        assert restored.machine_name == label_space.machine_name
        assert restored.configurations == label_space.configurations
        assert restored.num_labels == label_space.num_labels

    def test_hybrid_round_trip(self, fitted_hybrid):
        restored = HybridStaticDynamicClassifier.from_dict(fitted_hybrid.to_dict())
        rng = np.random.default_rng(7)
        probes = rng.normal(size=(40, 8))
        assert np.array_equal(
            restored.needs_dynamic(probes), fitted_hybrid.needs_dynamic(probes)
        )
        assert restored.config == fitted_hybrid.config
        assert restored.selected_dimensions == fitted_hybrid.selected_dimensions


class TestSerializationErrors:
    """Malformed artefact JSON fails with a named field, not a KeyError."""

    def test_configuration_missing_field(self, label_space):
        data = configuration_to_dict(label_space.configurations[0])
        del data["threads"]
        with pytest.raises(SerializationError, match="threads"):
            configuration_from_dict(data)

    def test_configuration_wrong_type(self, label_space):
        data = configuration_to_dict(label_space.configurations[0])
        data["nodes"] = "two"
        with pytest.raises(SerializationError, match="nodes"):
            configuration_from_dict(data)

    def test_configuration_bool_is_not_an_int(self, label_space):
        data = configuration_to_dict(label_space.configurations[0])
        data["threads"] = True
        with pytest.raises(SerializationError, match="threads"):
            configuration_from_dict(data)

    def test_configuration_non_object(self):
        with pytest.raises(SerializationError, match="JSON object"):
            configuration_from_dict(["not", "a", "dict"])

    def test_label_space_configurations_must_be_a_list(self, label_space):
        data = label_space_to_dict(label_space)
        data["configurations"] = {"oops": 1}
        with pytest.raises(SerializationError, match="list"):
            label_space_from_dict(data)

    def test_label_space_missing_machine_name(self, label_space):
        data = label_space_to_dict(label_space)
        del data["machine_name"]
        with pytest.raises(SerializationError, match="machine_name"):
            label_space_from_dict(data)

    def test_label_space_broken_entry_names_the_field(self, label_space):
        data = label_space_to_dict(label_space)
        data["configurations"][0] = {"threads": 2}
        with pytest.raises(SerializationError, match="missing required field"):
            label_space_from_dict(data)

    def test_vocabulary_missing_tokens(self):
        with pytest.raises(SerializationError, match="tokens"):
            vocabulary_from_dict({})

    def test_vocabulary_tokens_wrong_shape(self):
        with pytest.raises(SerializationError, match="list of strings"):
            vocabulary_from_dict({"tokens": [1, 2, 3]})

    def test_serialization_error_is_a_value_error(self):
        # Callers that predate the structured errors catch ValueError.
        assert issubclass(SerializationError, ValueError)


class TestConstructorPathValidation:
    """Regression: a miswired object argument once sailed through ``str()``
    and became a directory literally named
    ``<repro.serving.registry.ArtifactRegistry object at 0x...>`` at the
    repo root.  Every path-taking serving constructor now validates with
    ``os.fspath()``, which raises on non-path objects instead of minting
    a repr-named path."""

    def test_non_path_objects_raise_type_error(self, tmp_path):
        from repro.serving import (
            CheckpointDaemon,
            EmbeddingCache,
            JournalWriter,
            ModelHub,
        )

        miswired = object()
        with pytest.raises(TypeError):
            ArtifactRegistry(miswired)
        with pytest.raises(TypeError):
            JournalWriter(miswired)
        with pytest.raises(TypeError):
            CheckpointDaemon(EmbeddingCache(capacity=4), miswired)
        with pytest.raises(TypeError):
            ModelHub(journal_dir=miswired)
        # Nothing repr-named leaked onto disk along the way.
        assert not [name for name in os.listdir(os.getcwd()) if name.startswith("<")]

    def test_pathlike_objects_still_accepted(self, tmp_path):
        from repro.serving import JournalWriter

        registry = ArtifactRegistry(tmp_path / "registry")
        assert registry.root == str(tmp_path / "registry")
        writer = JournalWriter(tmp_path / "journal")
        writer.close()
        assert (tmp_path / "journal").is_dir()


class TestArtifactRegistry:
    def test_save_load_round_trip(self, tmp_path, predictor, sample_graphs, fitted_hybrid):
        registry = ArtifactRegistry(tmp_path)
        ref = registry.save("model", predictor, hybrid=fitted_hybrid)
        assert ref.version == "v0001"

        artifact = registry.load("model")
        rebuilt = artifact.build_predictor()
        original = predictor.predict_label_for_graphs(sample_graphs)
        restored = rebuilt.predict_label_for_graphs(sample_graphs)
        assert np.array_equal(original, restored)
        assert artifact.hybrid is not None
        assert artifact.num_labels == NUM_LABELS
        # Vocabulary round-trips exactly.
        assert artifact.encoder.vocabulary.tokens == predictor.encoder.vocabulary.tokens

    def test_versioning_monotonic(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        first = registry.save("model", predictor)
        second = registry.save("model", predictor)
        assert (first.version, second.version) == ("v0001", "v0002")
        assert registry.versions("model") == ["v0001", "v0002"]
        assert registry.latest_version("model") == "v0002"
        assert registry.names() == ["model"]
        assert registry.load("model").ref.version == "v0002"
        assert registry.load("model", "v0001").ref.version == "v0001"

    def test_missing_artifact_raises(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(ArtifactNotFoundError):
            registry.load("nope")
        with pytest.raises(ArtifactNotFoundError):
            registry.load("nope", "v0001")

    def test_load_rejects_traversal_and_staging_versions(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        ref = registry.save("model", predictor)
        # Name/version are path components: separators, dot-prefixes and
        # non-"vNNNN" versions (e.g. a torn staging dir) must not resolve.
        for name in ("../model", "a/b", "a\\b", ".hidden", ""):
            with pytest.raises(ArtifactNotFoundError):
                registry.load(name)
        for version in ("../v0001", f"{ref.version}.staging-1-aa", "latest"):
            with pytest.raises(ArtifactNotFoundError):
                registry.load("model", version)

    def test_checksum_mismatch_detected(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        ref = registry.save("model", predictor)
        vocab_path = tmp_path / "model" / ref.version / "vocabulary.json"
        vocab_path.write_text(vocab_path.read_text() + "\n")
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            registry.load("model")
        # Unverified loads still work (explicit opt-out).
        assert registry.load("model", verify=False) is not None

    def test_missing_file_detected(self, tmp_path, predictor, fitted_hybrid):
        registry = ArtifactRegistry(tmp_path)
        ref = registry.save("model", predictor, hybrid=fitted_hybrid)
        (tmp_path / "model" / ref.version / "hybrid.json").unlink()
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            registry.verify("model")

    def test_invalid_name_rejected(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        for bad in ("", ".hidden", "a/b", "a\\b"):
            with pytest.raises(ValueError):
                registry.save(bad, predictor)

    def test_torn_staging_dir_is_invisible(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        registry.save("model", predictor)
        # Simulate a save killed between writing the manifest and the atomic
        # rename: a complete-looking "*.staging" directory is left behind.
        staging = tmp_path / "model" / "v0002.staging"
        staging.mkdir()
        (staging / "manifest.json").write_text("{}")
        assert registry.versions("model") == ["v0001"]
        assert registry.save("model", predictor).version == "v0002"

    def test_versions_sort_numerically_past_v9999(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        for version in ("v9999", "v10000"):
            directory = tmp_path / "model" / version
            directory.mkdir(parents=True)
            (directory / "manifest.json").write_text("{}")
        assert registry.versions("model") == ["v9999", "v10000"]
        assert registry.latest_version("model") == "v10000"
        assert registry.save("model", predictor).version == "v10001"

    def test_save_retries_version_allocation_on_collision(self, tmp_path, predictor):
        # Regression: two concurrent writers both compute v0002; the loser's
        # os.replace used to die with ENOTEMPTY.  Simulate losing the race by
        # letting a competitor claim the computed version mid-save.
        registry = ArtifactRegistry(tmp_path)
        registry.save("model", predictor)
        competitor = ArtifactRegistry(tmp_path)
        real_next_version = registry._next_version
        raced = []

        def racing_next_version(name):
            version = real_next_version(name)
            if not raced:
                raced.append(version)
                competitor.save("model", predictor)  # steals this version
            return version

        registry._next_version = racing_next_version
        ref = registry.save("model", predictor)
        assert raced == ["v0002"]
        assert ref.version == "v0003"
        assert registry.versions("model") == ["v0001", "v0002", "v0003"]
        # The retried artefact's manifest records the version it really got,
        # and its checksums still verify.
        loaded = registry.load("model", "v0003")
        assert loaded.manifest["version"] == "v0003"

    def test_concurrent_saves_allocate_unique_versions(self, tmp_path, predictor):
        errors = []
        refs = []
        barrier = threading.Barrier(4)

        def writer():
            try:
                barrier.wait(timeout=10)
                refs.append(ArtifactRegistry(tmp_path).save("model", predictor))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        versions = sorted(ref.version for ref in refs)
        assert len(set(versions)) == 4
        assert ArtifactRegistry(tmp_path).versions("model") == versions
        for version in versions:
            ArtifactRegistry(tmp_path).verify("model", version)

    def test_fold_groups_discovery(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        for name in ("demo-fold0", "demo-fold1", "demo-fold10", "other-fold2", "solo"):
            registry.save(name, predictor)
        groups = registry.fold_groups()
        assert set(groups) == {"demo", "other"}
        assert list(groups["demo"]) == [0, 1, 10]  # numeric, not lexicographic
        assert groups["demo"][10] == "demo-fold10"
        assert registry.fold_members("other") == {2: "other-fold2"}
        assert registry.fold_members("missing") == {}


class TestRegistryRetention:
    def test_gc_keeps_newest_versions(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        for _ in range(4):
            registry.save("model", predictor)
        removed = registry.gc("model", keep_last=2)
        assert removed == ["v0001", "v0002"]
        assert registry.versions("model") == ["v0003", "v0004"]
        assert registry.load("model").ref.version == "v0004"

    def test_gc_never_deletes_the_latest(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        ref = registry.save("model", predictor)
        assert registry.gc("model", keep_last=1) == []
        assert registry.versions("model") == [ref.version]
        with pytest.raises(ValueError, match="keep_last"):
            registry.gc("model", keep_last=0)

    def test_gc_dry_run_deletes_nothing(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        for _ in range(3):
            registry.save("model", predictor)
        doomed = registry.gc("model", keep_last=1, dry_run=True)
        assert doomed == ["v0001", "v0002"]
        assert registry.versions("model") == ["v0001", "v0002", "v0003"]

    def test_gc_spares_pinned_versions(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        for _ in range(3):
            registry.save("model", predictor)
        registry.pin("model", "v0001")
        assert registry.is_pinned("model", "v0001")
        assert registry.pinned_versions("model") == ["v0001"]
        assert registry.gc("model", keep_last=1) == ["v0002"]
        assert registry.versions("model") == ["v0001", "v0003"]
        # Pinning is a retention marker, not a payload change.
        registry.verify("model", "v0001")
        registry.unpin("model", "v0001")
        assert registry.gc("model", keep_last=1) == ["v0001"]
        assert registry.versions("model") == ["v0003"]

    def test_gc_unknown_name(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        assert registry.gc("nope", keep_last=1) == []
        with pytest.raises(ValueError):
            registry.gc("../evil", keep_last=1)

    def test_pin_validates_target(self, tmp_path, predictor):
        registry = ArtifactRegistry(tmp_path)
        registry.save("model", predictor)
        with pytest.raises(ArtifactNotFoundError):
            registry.pin("model", "v0099")
        with pytest.raises(ArtifactNotFoundError):
            registry.pin("nope", "v0001")


# ----------------------------------------------------------------- caching


class TestEmbeddingCache:
    def test_lru_eviction_order(self):
        cache = EmbeddingCache(capacity=2)
        for key in ("a", "b"):
            cache.put(key, np.zeros(2), np.zeros(3))
        assert cache.get("a") is not None  # promotes "a"
        cache.put("c", np.ones(2), np.ones(3))  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_entries_are_isolated_copies(self):
        cache = EmbeddingCache(capacity=4)
        logits = np.array([1.0, 2.0])
        cache.put("k", logits, np.zeros(2))
        logits[0] = 99.0
        entry = cache.get("k")
        assert entry.logits[0] == 1.0

    def test_stats(self):
        cache = EmbeddingCache(capacity=4)
        cache.put("k", np.zeros(1), np.zeros(1))
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 1.0
        assert stats["hit_rate"] == 0.5

    def test_clear_resets_counters(self):
        cache = EmbeddingCache(capacity=2)
        for key in ("a", "b", "c"):  # evicts "a"
            cache.put(key, np.zeros(1), np.zeros(1))
        cache.get("b")
        cache.get("gone")
        cache.clear()
        # A cleared cache must not report the dead population's hit rate.
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)
        assert cache.hit_rate == 0.0
        stats = cache.stats()
        assert stats["hits"] == stats["misses"] == stats["evictions"] == 0.0
        assert stats["hit_rate"] == 0.0
        cache.get("anything")
        assert cache.hit_rate == 0.0
        cache.put("x", np.zeros(1), np.zeros(1))
        cache.get("x")
        assert cache.hit_rate == 0.5

    def test_dump_load_round_trip_bit_identical(self, tmp_path):
        cache = EmbeddingCache(capacity=4)
        cache.put("first", np.array([0.1, 0.2, 0.3]), np.array([1.0, -1.0]))
        cache.put("second", np.array([9.0, -9.0, 0.5]), np.array([0.25, 0.75]))
        cache.get("first")  # promote: "second" is now least recently used
        path = str(tmp_path / "cache.npz")
        assert cache.dump(path) == 2

        restored = EmbeddingCache(capacity=4)
        assert restored.load(path) == 2
        entry = restored.get("first")
        assert np.array_equal(entry.logits, np.array([0.1, 0.2, 0.3]))
        assert np.array_equal(entry.graph_vector, np.array([1.0, -1.0]))
        assert "second" in restored

    def test_load_preserves_lru_order(self, tmp_path):
        cache = EmbeddingCache(capacity=4)
        cache.put("old", np.zeros(1), np.zeros(1))
        cache.put("new", np.ones(1), np.ones(1))
        cache.get("old")  # "new" becomes the eviction candidate
        path = str(tmp_path / "cache.npz")
        cache.dump(path)

        tiny = EmbeddingCache(capacity=1)
        tiny.load(path)
        assert "old" in tiny
        assert tiny.evictions == 1

    def test_load_rejects_foreign_file(self, tmp_path):
        path = str(tmp_path / "not-a-dump.npz")
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="dump"):
            EmbeddingCache(capacity=4).load(path)

    def test_dump_empty_cache(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        assert EmbeddingCache(capacity=4).dump(path) == 0
        fresh = EmbeddingCache(capacity=4)
        assert fresh.load(path) == 0
        assert len(fresh) == 0


class TestServingStats:
    def test_counters_and_percentiles(self):
        stats = ServingStats(latency_window=16)
        for latency in (0.01, 0.02, 0.03, 0.04):
            stats.record_request(latency, cache_hit=latency > 0.02)
        stats.record_batch(2)
        stats.record_batch(2)
        snapshot = stats.snapshot()
        assert snapshot["total_requests"] == 4
        assert snapshot["cache_hits"] == 2
        assert snapshot["cache_hit_rate"] == 0.5
        assert snapshot["batch_histogram"] == {2: 2}
        assert snapshot["mean_batch_size"] == 2.0
        assert 0.01 <= snapshot["latency_p50_s"] <= 0.04
        assert snapshot["latency_p95_s"] >= snapshot["latency_p50_s"]
        assert snapshot["qps"] > 0

    def test_snapshot_is_internally_consistent_mid_burst(self):
        # Every recorded request is a cache hit, so in any *consistent* view
        # hits == requests; a snapshot whose counters are read at different
        # times (the old unlocked reads) could observe hits > requests.
        stats = ServingStats()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                stats.record_request(0.0001, cache_hit=True)
                stats.record_batch(2)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(300):
                snapshot = stats.snapshot()
                assert snapshot["cache_hits"] == snapshot["total_requests"]
                total = snapshot["total_requests"]
                assert snapshot["cache_hit_rate"] == (1.0 if total else 0.0)
                assert snapshot["total_batches"] * 2 == sum(
                    size * count for size, count in snapshot["batch_histogram"].items()
                )
        finally:
            stop.set()
            thread.join(timeout=10)


# ----------------------------------------------------------------- batcher


class TestMicroBatcher:
    def test_batches_respect_max_size_and_order(self):
        batches = []

        def runner(items):
            batches.append(len(items))
            return [item * 10 for item in items]

        batcher = MicroBatcher(runner, max_batch_size=4, max_wait_s=0.01)
        futures = [batcher.submit(i) for i in range(10)]
        with batcher:
            results = [future.result(timeout=5) for future in futures]
        assert results == [i * 10 for i in range(10)]
        assert batches[0] == 4  # pre-start queue drains in full batches
        assert sum(batches) == 10
        assert all(size <= 4 for size in batches)

    def test_runner_exception_propagates(self):
        def runner(items):
            raise RuntimeError("boom")

        with MicroBatcher(runner, max_batch_size=2, max_wait_s=0.001) as batcher:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=5)

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(lambda items: items, max_batch_size=2)
        batcher.start()
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(1)

    def test_close_without_start_fails_queued_futures(self):
        batcher = MicroBatcher(lambda items: items, max_batch_size=2)
        future = batcher.submit(1)
        batcher.close()
        with pytest.raises(RuntimeError, match="before start"):
            future.result(timeout=5)

    def test_started_close_drains_queue(self):
        import time as time_module

        def slow_runner(items):
            time_module.sleep(0.02)
            return items

        batcher = MicroBatcher(slow_runner, max_batch_size=1, max_wait_s=0.0)
        futures = [batcher.submit(i) for i in range(4)]
        batcher.start()
        # Even with a join timeout shorter than the drain, queued futures
        # must be served by the live worker, not failed spuriously.
        batcher.close(timeout=0.01)
        assert [future.result(timeout=5) for future in futures] == [0, 1, 2, 3]

    def test_cancelled_future_does_not_kill_the_batcher(self):
        batcher = MicroBatcher(lambda items: [i * 10 for i in items], max_batch_size=4)
        doomed = batcher.submit(1)
        assert doomed.cancel()  # cancelled while queued, before start
        survivor = batcher.submit(2)
        with batcher:
            # The thread must skip the cancelled future and keep serving.
            assert survivor.result(timeout=5) == 20
            late = batcher.submit(3)
            assert late.result(timeout=5) == 30

    def test_result_count_mismatch_is_an_error(self):
        with MicroBatcher(lambda items: [], max_batch_size=2, max_wait_s=0.001) as batcher:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="results"):
                future.result(timeout=5)

    def test_close_while_batch_mid_flight_serves_everything(self):
        # close() arriving while the runner is inside a batch must neither
        # drop that batch nor the requests queued behind it.
        started = threading.Event()
        release = threading.Event()

        def runner(items):
            started.set()
            release.wait(timeout=10)
            return items

        batcher = MicroBatcher(runner, max_batch_size=1, max_wait_s=0.0)
        batcher.start()
        in_flight = batcher.submit("in-flight")
        assert started.wait(timeout=10)
        queued = batcher.submit("queued")
        closer = threading.Thread(target=batcher.close)
        closer.start()
        release.set()
        assert in_flight.result(timeout=10) == "in-flight"
        assert queued.result(timeout=10) == "queued"
        closer.join(timeout=10)
        assert not closer.is_alive()
        with pytest.raises(RuntimeError):
            batcher.submit("too late")

    def test_cancelled_future_in_mixed_batch_is_skipped(self):
        batches = []

        def runner(items):
            batches.append(list(items))
            return [item * 10 for item in items]

        batcher = MicroBatcher(runner, max_batch_size=4)
        keep_first = batcher.submit(1)
        doomed = batcher.submit(2)
        keep_second = batcher.submit(3)
        assert doomed.cancel()
        with batcher:
            # The live neighbours of a cancelled future still get answers,
            # mapped to the right items.
            assert keep_first.result(timeout=5) == 10
            assert keep_second.result(timeout=5) == 30
        assert all(2 not in batch for batch in batches)
        assert doomed.cancelled()

    def test_restart_after_close_is_rejected(self):
        batcher = MicroBatcher(lambda items: items, max_batch_size=2)
        with batcher:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            batcher.start()


class TestMicroBatcherScheduling:
    def test_workers_and_fanout_validated(self):
        with pytest.raises(ValueError, match="workers"):
            MicroBatcher(lambda items: items, workers=0)
        with pytest.raises(ValueError, match="fanout"):
            MicroBatcher(lambda items: items, fanout=0)

    def test_multiple_workers_drain_concurrently(self):
        """With a reentrant runner, two workers genuinely overlap batches —
        the second batch completes while the first is still in flight."""
        import time as _time

        in_flight = []
        overlap_seen = threading.Event()
        lock = threading.Lock()

        def runner(items):
            with lock:
                in_flight.append(1)
                if len(in_flight) > 1:
                    overlap_seen.set()
            _time.sleep(0.05)
            with lock:
                in_flight.pop()
            return [item * 2 for item in items]

        with MicroBatcher(runner, max_batch_size=1, max_wait_s=0.0, workers=2) as batcher:
            futures = [batcher.submit(i) for i in range(6)]
            results = [future.result(timeout=10) for future in futures]
        assert results == [0, 2, 4, 6, 8, 10]
        assert overlap_seen.is_set()

    def test_telemetry_reports_fanout_and_dispatches(self):
        batcher = MicroBatcher(lambda items: items, max_batch_size=4, fanout=5)
        telemetry = batcher.telemetry()
        assert telemetry["fanout"] == 5
        assert telemetry["batches_dispatched"] == 0
        with batcher:
            futures = [batcher.submit(i) for i in range(4)]
            [future.result(timeout=10) for future in futures]
            telemetry = batcher.telemetry()
        assert telemetry["batches_dispatched"] >= 1
        assert telemetry["items_dispatched"] == 4

    def test_multi_worker_close_drains_everything(self):
        processed = []

        def runner(items):
            processed.extend(items)
            return items

        batcher = MicroBatcher(runner, max_batch_size=2, workers=3).start()
        futures = [batcher.submit(i) for i in range(20)]
        batcher.close()
        for future in futures:
            assert future.done()
        assert sorted(processed) == list(range(20))


# ----------------------------------------------------------------- service


def make_service(predictor, **overrides):
    defaults = dict(max_batch_size=32, max_wait_s=0.02, cache_capacity=64)
    defaults.update(overrides)
    return PredictionService(
        model=predictor.model,
        encoder=predictor.encoder,
        config=ServiceConfig(**defaults),
    )


class TestPredictionService:
    def test_service_config_validates_knobs(self):
        for bad in (
            dict(max_batch_size=0),
            dict(max_batch_size=-1),
            dict(max_wait_s=-0.1),
            dict(cache_capacity=0),
            dict(latency_window=0),
            dict(batcher_workers=0),
        ):
            with pytest.raises(ValueError):
                ServiceConfig(**bad)

    def test_micro_batched_identical_to_per_request(self, predictor, sample_graphs):
        service = make_service(predictor, enable_cache=False)
        batched = service.predict_many(sample_graphs)
        singles = [service.predict(graph) for graph in sample_graphs]
        for one, many in zip(singles, batched):
            assert one.label == many.label
            assert np.allclose(one.probabilities, many.probabilities)
            assert np.allclose(one.graph_vector, many.graph_vector)
            assert one.fingerprint == many.fingerprint

    def test_cache_hit_on_repeat(self, predictor, sample_graphs):
        service = make_service(predictor)
        first = service.predict(sample_graphs[0])
        second = service.predict(sample_graphs[0])
        assert not first.cache_hit
        assert second.cache_hit
        assert second.label == first.label
        assert np.array_equal(second.probabilities, first.probabilities)
        assert np.array_equal(second.graph_vector, first.graph_vector)
        assert service.cache.hits == 1
        assert service.stats.cache_hit_rate == 0.5
        # The hit did not trigger another forward pass.
        assert service.stats.total_batches == 1

    def test_duplicates_within_one_call_share_one_forward(self, predictor, sample_graphs):
        service = make_service(predictor, enable_cache=False)
        graph = sample_graphs[0]
        results = service.predict_many([graph, graph, graph])
        assert service.stats.total_batches == 1
        assert service.stats.batch_histogram == {1: 1}
        assert len({result.label for result in results}) == 1
        assert np.array_equal(results[0].probabilities, results[2].probabilities)

    def test_duplicates_do_not_inflate_cache_misses(self, predictor, sample_graphs):
        service = make_service(predictor)
        graph = sample_graphs[0]
        service.predict_many([graph, graph, graph])
        # One real miss; the two duplicates piggyback on the pending forward.
        assert service.cache.misses == 1
        assert service.predict(graph).cache_hit
        assert service.cache.hit_rate == 0.5

    def test_chunks_respect_max_batch_size(self, predictor, sample_graphs):
        service = make_service(predictor, enable_cache=False, max_batch_size=5)
        service.predict_many(sample_graphs)  # 12 distinct graphs -> 5 + 5 + 2
        assert service.stats.total_batches == 3
        assert service.stats.batch_histogram == {5: 2, 2: 1}

    def test_accepts_raw_program_graph(self, predictor, small_suite):
        service = make_service(predictor)
        program_graph = GraphBuilder().build_module(small_suite[0].module)
        encoded = predictor.encoder.encode(program_graph)
        result = service.predict(program_graph)
        assert result.fingerprint == graph_fingerprint(encoded)

    def test_rejects_unknown_request_type(self, predictor):
        service = make_service(predictor)
        with pytest.raises(TypeError):
            service.predict("not a graph")

    def test_no_label_space_means_no_configuration(self, predictor, sample_graphs):
        service = make_service(predictor)
        result = service.predict(sample_graphs[0])
        assert result.configuration is None
        assert result.needs_profiling is None

    def test_hybrid_and_label_space_attached(
        self, sample_graphs, label_space, fitted_hybrid
    ):
        matched = small_predictor(num_labels=label_space.num_labels)
        service = PredictionService(
            model=matched.model,
            encoder=matched.encoder,
            label_space=label_space,
            hybrid=fitted_hybrid,
        )
        result = service.predict(sample_graphs[0])
        assert result.configuration == label_space.configuration_of(result.label)
        assert isinstance(result.needs_profiling, bool)

    def test_mismatched_label_space_rejected_at_construction(self, label_space):
        # A head that emits more labels than the label space defines would
        # silently answer ``configuration=None``; it must fail loudly here.
        mismatched = small_predictor(num_labels=label_space.num_labels + 1)
        with pytest.raises(ValueError, match="label space"):
            PredictionService(
                model=mismatched.model,
                encoder=mismatched.encoder,
                label_space=label_space,
            )

    def test_cache_dump_and_warm_up_round_trip(self, predictor, sample_graphs, tmp_path):
        service = make_service(predictor)
        cold = service.predict_many(sample_graphs)
        path = str(tmp_path / "warm.npz")
        assert service.dump_cache(path) == len(service.cache)

        warmed = make_service(predictor, warmup_path=path)
        first = warmed.predict(sample_graphs[0])
        # The very first request after a restart is already a hit ...
        assert first.cache_hit
        assert first.label == cold[0].label
        assert np.array_equal(first.probabilities, cold[0].probabilities)
        # ... and the explicit method does the same for a running service.
        fresh = make_service(predictor)
        assert fresh.warm_up(path) == len(sample_graphs)
        assert fresh.predict(sample_graphs[1]).cache_hit

    def test_missing_warmup_path_is_a_cold_start(self, predictor, sample_graphs, tmp_path):
        service = make_service(predictor, warmup_path=str(tmp_path / "absent.npz"))
        assert not service.predict(sample_graphs[0]).cache_hit

    def test_warm_up_from_a_different_model_stays_cold(
        self, predictor, sample_graphs, tmp_path
    ):
        # Cache keys carry a weights digest: a dump from an old model
        # version must never replay its (stale) logits through a new one.
        old_service = make_service(predictor)
        old_results = old_service.predict_many(sample_graphs)
        path = str(tmp_path / "old-model.npz")
        old_service.dump_cache(path)

        retrained = small_predictor(seed=99)
        new_service = make_service(retrained, warmup_path=path)
        result = new_service.predict(sample_graphs[0])
        assert not result.cache_hit
        assert not np.array_equal(result.probabilities, old_results[0].probabilities)

    def test_warm_up_requires_cache(self, predictor, tmp_path):
        service = make_service(predictor, enable_cache=False)
        with pytest.raises(RuntimeError, match="cache"):
            service.dump_cache(str(tmp_path / "warm.npz"))
        with pytest.raises(RuntimeError, match="cache"):
            service.warm_up(str(tmp_path / "warm.npz"))

    def test_submit_rejects_bad_type_before_batching(self, predictor, sample_graphs):
        # Invalid requests must fail at submit time instead of poisoning a
        # whole micro-batch of valid concurrent requests.
        service = make_service(predictor)
        with pytest.raises(TypeError):
            service.submit("not a graph")
        future = service.submit(sample_graphs[0])
        with service:
            assert future.result(timeout=10).name == sample_graphs[0].name

    def test_submit_after_stop_restarts_batcher(self, predictor, sample_graphs):
        service = make_service(predictor)
        with service:
            service.submit(sample_graphs[0]).result(timeout=10)
        # After stop(), a started service transparently restarts on demand
        # rather than queueing into a batcher that never runs.
        future = service.submit(sample_graphs[1])
        assert future.result(timeout=10).label == service.predict(sample_graphs[1]).label
        service.stop()

    def test_repeated_stop_restart_cycles(self, predictor, sample_graphs):
        # Each stop() closes a MicroBatcher for good; the service must hand
        # every later submit a fresh one, any number of times.
        service = make_service(predictor)
        expected = service.predict(sample_graphs[0]).label
        service.start()
        for _ in range(3):
            future = service.submit(sample_graphs[0])
            assert future.result(timeout=10).label == expected
            service.stop()

    def test_async_submit_matches_sync_and_batches(self, predictor, sample_graphs):
        sync_service = make_service(predictor, enable_cache=False)
        expected = [result.label for result in sync_service.predict_many(sample_graphs)]

        service = make_service(predictor, enable_cache=False, max_wait_s=0.05)
        futures = [service.submit(graph) for graph in sample_graphs]
        with service:
            results = [future.result(timeout=10) for future in futures]
        assert [result.label for result in results] == expected
        # The pre-start queue was answered in one micro-batch.
        assert service.stats.total_batches == 1
        assert service.stats.batch_histogram == {len(sample_graphs): 1}


class TestLockFreeConcurrency:
    """Inference is stateless (no forward locks) — concurrent callers must
    get exactly the answers a sequential caller gets."""

    def test_two_threads_predict_many_simultaneously(self, predictor, sample_graphs):
        service = make_service(predictor, enable_cache=False)
        expected = service.predict_many(sample_graphs)
        errors = []
        barrier = threading.Barrier(2)

        def worker():
            try:
                barrier.wait(timeout=5)
                for _ in range(5):
                    results = service.predict_many(sample_graphs)
                    for got, want in zip(results, expected):
                        assert got.label == want.label
                        assert np.array_equal(got.probabilities, want.probabilities)
                        assert np.array_equal(got.graph_vector, want.graph_vector)
            except Exception as exc:  # propagate to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

    def test_two_threads_on_one_ensemble(self, exported_ensemble, sample_graphs):
        root, _ = exported_ensemble
        service = EnsemblePredictionService.from_registry(
            root, "ens", config=EnsembleConfig(enable_cache=False)
        )
        expected = service.predict_many(sample_graphs)
        errors = []
        barrier = threading.Barrier(2)

        def worker():
            try:
                barrier.wait(timeout=5)
                for _ in range(3):
                    results = service.predict_many(sample_graphs)
                    for got, want in zip(results, expected):
                        assert got.label == want.label
                        assert got.per_fold_labels == want.per_fold_labels
                        assert np.array_equal(got.probabilities, want.probabilities)
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

    def test_services_carry_no_forward_lock(self, predictor):
        # The attribute is gone, not just unused: nothing in the serving
        # layer may serialise engine forwards again.
        service = make_service(predictor)
        assert not hasattr(service, "_forward_lock")

    def test_multi_worker_batcher_end_to_end(self, predictor, sample_graphs):
        sync = make_service(predictor, enable_cache=False)
        expected = [result.label for result in sync.predict_many(sample_graphs)]
        service = make_service(predictor, enable_cache=False, batcher_workers=2)
        futures = [service.submit(graph) for graph in sample_graphs]
        with service:
            results = [future.result(timeout=30) for future in futures]
        assert [result.label for result in results] == expected


# ---------------------------------------------------------------- ensemble


class TestCombinationStrategies:
    def test_mean_softmax_takes_argmax_of_mean(self):
        stacked = np.array([[10.0, 0.0, 0.0], [10.0, 0.0, 0.0], [0.0, 10.0, 0.0]])
        label, probabilities = combine_mean_softmax(stacked)
        assert label == 0
        assert probabilities.shape == (3,)
        assert abs(probabilities.sum() - 1.0) < 1e-12
        assert probabilities[0] > probabilities[1] > probabilities[2]

    def test_majority_vote_counts_fold_argmaxes(self):
        stacked = np.array([[10.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        label, shares = combine_majority_vote(stacked)
        assert label == 0
        assert np.allclose(shares, [2 / 3, 1 / 3])

    def test_majority_vote_tie_breaks_on_mean_probability(self):
        # One vote each, but fold 0 is far more confident about label 1.
        stacked = np.array([[0.0, 5.0], [4.0, 0.0]])
        label, shares = combine_majority_vote(stacked)
        assert label == 1
        assert np.allclose(shares, [0.5, 0.5])

    def test_majority_vote_exact_tie_falls_to_lower_label(self):
        stacked = np.array([[0.0, 10.0], [10.0, 0.0]])
        label, _ = combine_majority_vote(stacked)
        assert label == 0

    def test_config_validates_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            EnsembleConfig(strategy="median")
        for bad in (
            dict(max_batch_size=0),
            dict(max_wait_s=-1.0),
            dict(cache_capacity=0),
            dict(latency_window=0),
        ):
            with pytest.raises(ValueError):
                EnsembleConfig(**bad)


@pytest.fixture(scope="module")
def exported_ensemble(tiny_pipeline, tiny_evaluation, tmp_path_factory):
    """All tiny-evaluation folds exported under one ensemble base name."""
    root = str(tmp_path_factory.mktemp("ensemble-registry"))
    refs = tiny_pipeline.export_artifacts(tiny_evaluation, root, name="ens")
    return root, refs


class TestEnsemblePredictionService:
    def test_discovers_every_exported_fold(self, exported_ensemble, tiny_evaluation):
        root, refs = exported_ensemble
        assert len(refs) >= 3
        registry = ArtifactRegistry(root)
        members = registry.fold_members("ens")
        assert sorted(members) == sorted(fold.fold for fold in tiny_evaluation.folds)
        service = EnsemblePredictionService.from_registry(root, "ens")
        assert service.num_members == len(refs)

    def test_deterministic_under_both_strategies(self, exported_ensemble, sample_graphs):
        root, _ = exported_ensemble
        for strategy in ("mean-softmax", "majority-vote"):
            config = EnsembleConfig(strategy=strategy)
            first = EnsemblePredictionService.from_registry(root, "ens", config=config)
            second = EnsemblePredictionService.from_registry(root, "ens", config=config)
            results_a = first.predict_many(sample_graphs)
            results_b = second.predict_many(sample_graphs)
            assert [r.label for r in results_a] == [r.label for r in results_b]
            for a, b in zip(results_a, results_b):
                assert np.array_equal(a.probabilities, b.probabilities)
                assert a.per_fold_labels == b.per_fold_labels
            # Re-answering through the same (now cache-hot) service agrees too.
            replay = first.predict_many(sample_graphs)
            assert [r.label for r in replay] == [r.label for r in results_a]
            assert all(r.cache_hit for r in replay)

    def test_results_report_fold_agreement(self, exported_ensemble, sample_graphs):
        root, refs = exported_ensemble
        service = EnsemblePredictionService.from_registry(root, "ens")
        for result in service.predict_many(sample_graphs):
            assert set(result.per_fold_labels) == set(service.members)
            votes = sum(
                1 for label in result.per_fold_labels.values() if label == result.label
            )
            assert result.agreement == pytest.approx(votes / len(refs))
            assert 0.0 <= result.agreement <= 1.0
            assert result.unanimous == (
                len(set(result.per_fold_labels.values())) == 1
            )
            assert abs(result.probabilities.sum() - 1.0) < 1e-9

    def test_majority_label_has_plurality(self, exported_ensemble, sample_graphs):
        root, _ = exported_ensemble
        service = EnsemblePredictionService.from_registry(
            root, "ens", config=EnsembleConfig(strategy="majority-vote")
        )
        for result in service.predict_many(sample_graphs):
            counts = {}
            for label in result.per_fold_labels.values():
                counts[label] = counts.get(label, 0) + 1
            assert counts[result.label] == max(counts.values())

    def test_configuration_and_profiling_mapping(
        self, exported_ensemble, sample_graphs, tiny_evaluation
    ):
        root, _ = exported_ensemble
        service = EnsemblePredictionService.from_registry(root, "ens")
        result = service.predict(sample_graphs[0])
        expected = tiny_evaluation.label_space.configuration_of(result.label)
        assert result.configuration == expected
        assert isinstance(result.needs_profiling, bool)

    def test_shared_cache_is_keyed_by_version_set(self, exported_ensemble, sample_graphs):
        root, _ = exported_ensemble
        shared = EmbeddingCache(capacity=64)
        full = EnsemblePredictionService.from_registry(root, "ens", cache=shared)
        members = sorted(ArtifactRegistry(root).fold_members("ens"))
        subset = EnsemblePredictionService.from_registry(
            root, "ens", folds=members[:2], cache=shared
        )
        assert not full.predict(sample_graphs[0]).cache_hit
        # Same request, same shared cache — but a different model-version
        # set must never replay the other ensemble's logits.
        assert not subset.predict(sample_graphs[0]).cache_hit
        assert full.predict(sample_graphs[0]).cache_hit
        assert subset.predict(sample_graphs[0]).cache_hit

    def test_subset_selection_and_missing_folds(self, exported_ensemble):
        root, _ = exported_ensemble
        members = sorted(ArtifactRegistry(root).fold_members("ens"))
        service = EnsemblePredictionService.from_registry(root, "ens", folds=members[:1])
        assert service.num_members == 1
        with pytest.raises(ArtifactNotFoundError):
            EnsemblePredictionService.from_registry(root, "ens", folds=[99])
        with pytest.raises(ArtifactNotFoundError):
            EnsemblePredictionService.from_registry(root, "no-such-base")

    def test_warm_start_round_trip(self, exported_ensemble, sample_graphs, tmp_path):
        root, _ = exported_ensemble
        cold = EnsemblePredictionService.from_registry(root, "ens")
        cold_results = cold.predict_many(sample_graphs)
        path = str(tmp_path / "ensemble-warm.npz")
        assert cold.dump_cache(path) == len(sample_graphs)

        warmed = EnsemblePredictionService.from_registry(
            root, "ens", config=EnsembleConfig(warmup_path=path)
        )
        first = warmed.predict(sample_graphs[0])
        assert first.cache_hit
        assert first.label == cold_results[0].label
        assert np.array_equal(first.probabilities, cold_results[0].probabilities)
        assert first.per_fold_labels == cold_results[0].per_fold_labels

    def test_async_submit_matches_sync(self, exported_ensemble, sample_graphs):
        root, _ = exported_ensemble
        sync = EnsemblePredictionService.from_registry(root, "ens")
        expected = [result.label for result in sync.predict_many(sample_graphs)]
        service = EnsemblePredictionService.from_registry(root, "ens")
        futures = [service.submit(graph) for graph in sample_graphs]
        with service:
            results = [future.result(timeout=30) for future in futures]
        assert [result.label for result in results] == expected

    def test_snapshot_describes_the_ensemble(self, exported_ensemble, sample_graphs):
        root, refs = exported_ensemble
        service = EnsemblePredictionService.from_registry(root, "ens")
        service.predict_many(sample_graphs)
        snapshot = service.snapshot()
        assert snapshot["strategy"] == "mean-softmax"
        assert snapshot["num_members"] == len(refs)
        assert len(snapshot["members"]) == len(refs)
        assert snapshot["total_requests"] == len(sample_graphs)
        # One fold-stacked engine sweep answers every member per chunk.
        assert snapshot["total_batches"] == 1
        assert snapshot["fold_stacked"] is True
        engine = snapshot["engine"]
        assert engine["plans_built"] == 1
        assert engine["stacked_forwards"] == 1
        assert engine["fanned_folds"] == len(refs)
        assert engine["mean_fold_fanout"] == float(len(refs))
        assert snapshot["cache"]["size"] == float(len(sample_graphs))

    def test_heterogeneous_members_fall_back_to_per_fold_engine(
        self, tmp_path, sample_graphs
    ):
        """Members that share vocabulary and head size but differ in an
        architecture knob cannot stack; the ensemble must still serve them
        (per-fold engine loop over the shared plan), just without the
        fold-stacked fast path."""
        registry = ArtifactRegistry(tmp_path)
        registry.save("mixed-fold0", small_predictor(seed=1))
        wider = StaticConfigurationPredictor(
            num_labels=NUM_LABELS,
            encoder=GraphEncoder(),
            config=StaticModelConfig(
                hidden_dim=12, graph_vector_dim=8, num_rgcn_layers=1, epochs=1, seed=2
            ),
        )
        registry.save("mixed-fold1", wider)
        service = EnsemblePredictionService.from_registry(str(tmp_path), "mixed")
        assert service._stacked is None
        assert service.describe()["fold_stacked"] is False
        result = service.predict(sample_graphs[0])
        assert len(result.per_fold_labels) == 2
        snapshot = service.snapshot()
        assert snapshot["engine"]["stacked_forwards"] == 0
        assert snapshot["engine"]["fanned_folds"] == 2

    def test_mismatched_members_rejected(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.save("bad-fold0", small_predictor(num_labels=4))
        registry.save("bad-fold1", small_predictor(num_labels=5))
        with pytest.raises(ValueError, match="label"):
            EnsemblePredictionService.from_registry(str(tmp_path), "bad")

    def test_conflicting_label_spaces_rejected(self, tmp_path, label_space):
        from repro.core import LabelSpace

        # Same size, same machine — but label index i means a different
        # configuration. Combining these would be silently wrong.
        permuted = LabelSpace(
            configurations=list(reversed(label_space.configurations)),
            machine_name=label_space.machine_name,
        )
        registry = ArtifactRegistry(tmp_path)
        matched = small_predictor(num_labels=label_space.num_labels)
        registry.save("twist-fold0", matched, label_space=label_space)
        registry.save("twist-fold1", matched, label_space=permuted)
        with pytest.raises(ValueError, match="conflicting label spaces"):
            EnsemblePredictionService.from_registry(str(tmp_path), "twist")

    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            EnsemblePredictionService({})


# -------------------------------------------------------------- end-to-end


class TestEndToEnd:
    def test_train_export_reload_serve(self, tiny_pipeline, tiny_evaluation, tmp_path):
        """Acceptance: train -> export -> reload -> identical predictions."""
        refs = tiny_pipeline.export_artifacts(tiny_evaluation, tmp_path, name="e2e")
        assert len(refs) == len(tiny_evaluation.folds)
        registry = ArtifactRegistry(tmp_path)

        for fold, ref in zip(tiny_evaluation.folds, refs):
            registry.verify(ref.name)
            samples = tiny_pipeline.region_samples(
                fold.validation_regions, fold.explored_sequence
            )
            graphs = [sample.graph for sample in samples]
            if not graphs:
                continue
            in_memory = fold.predictor.predict_label_for_graphs(graphs)

            service = PredictionService.from_registry(tmp_path, ref.name)
            served = service.predict_many(graphs)
            assert np.array_equal(in_memory, np.array([r.label for r in served]))
            # Per-request path agrees with the micro-batched path.
            service.cache.clear()
            singles = [service.predict(graph) for graph in graphs]
            assert [r.label for r in singles] == [r.label for r in served]
            # The exported label space maps labels onto real configurations.
            for result in served:
                expected = tiny_evaluation.label_space.configuration_of(result.label)
                assert result.configuration == expected

    def test_exported_metadata_describes_fold(self, tiny_pipeline, tiny_evaluation, tmp_path):
        refs = tiny_pipeline.export_artifacts(
            tiny_evaluation, tmp_path, name="meta", folds=[tiny_evaluation.folds[0].fold]
        )
        assert len(refs) == 1
        artifact = ArtifactRegistry(tmp_path).load(refs[0].name)
        metadata = artifact.manifest["metadata"]
        fold = tiny_evaluation.folds[0]
        assert metadata["machine"] == tiny_evaluation.machine_name
        assert metadata["fold"] == fold.fold
        assert metadata["explored_sequence"] == fold.explored_sequence
        assert set(metadata["validation_regions"]) == set(fold.validation_regions)

    def test_exported_metadata_describes_ensemble_membership(
        self, tiny_pipeline, tiny_evaluation, tmp_path
    ):
        refs = tiny_pipeline.export_artifacts(tiny_evaluation, tmp_path, name="memb")
        registry = ArtifactRegistry(tmp_path)
        expected_names = [f"memb-fold{fold.fold}" for fold in tiny_evaluation.folds]
        for ref in refs:
            ensemble_meta = registry.load(ref.name).manifest["metadata"]["ensemble"]
            assert ensemble_meta["base"] == "memb"
            assert ensemble_meta["num_members"] == len(tiny_evaluation.folds)
            assert ensemble_meta["member_names"] == expected_names
        # A subset export still records the *full* roster, so incremental
        # exports under one base name never disagree about membership.
        only_first = tiny_pipeline.export_artifacts(
            tiny_evaluation, tmp_path, name="memb", folds=[tiny_evaluation.folds[0].fold]
        )
        assert len(only_first) == 1
        subset_meta = registry.load(only_first[0].name).manifest["metadata"]["ensemble"]
        assert subset_meta["member_names"] == expected_names
        assert subset_meta["num_members"] == len(tiny_evaluation.folds)
