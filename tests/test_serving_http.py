"""Tests for the HTTP wire protocol and background cache checkpointing.

Covers the wire-format graph serialization (round-trips and strict error
paths), the transport-independent :class:`ServingApp` router, the
:class:`CheckpointDaemon`, and the full stack over real sockets: parity
with in-process answers, concurrent clients riding the micro-batcher, the
structured 4xx error mapping, and a kill/restart cycle answered warm from
the checkpointed cache.
"""

import http.client
import json
import threading
import time

import pytest

from repro.core import StaticConfigurationPredictor, StaticModelConfig
from repro.graphs import GraphBuilder, GraphEncoder, graph_fingerprint
from repro.serving import (
    ArtifactRegistry,
    CheckpointDaemon,
    EmbeddingCache,
    EnsembleConfig,
    EnsemblePredictionService,
    GRAPH_SCHEMA_VERSION,
    PredictionHTTPServer,
    PredictionService,
    SerializationError,
    ServiceConfig,
    ServingApp,
    program_graph_from_dict,
    program_graph_from_json,
    program_graph_to_dict,
)

NUM_LABELS = 4


def small_predictor(seed=3):
    """A small (untrained — weights are deterministic) predictor."""
    return StaticConfigurationPredictor(
        num_labels=NUM_LABELS,
        encoder=GraphEncoder(),
        config=StaticModelConfig(
            hidden_dim=8, graph_vector_dim=8, num_rgcn_layers=1, epochs=1, seed=seed
        ),
    )


@pytest.fixture(scope="module")
def raw_graphs(small_suite):
    builder = GraphBuilder()
    return [builder.build_module(region.module) for region in small_suite]


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    registry = ArtifactRegistry(tmp_path_factory.mktemp("registry"))
    registry.save("demo", small_predictor())
    return registry.load("demo")


def make_service(artifact, **overrides):
    defaults = dict(max_batch_size=16, max_wait_s=0.01)
    defaults.update(overrides)
    return PredictionService.from_artifact(artifact, config=ServiceConfig(**defaults))


# ------------------------------------------------------------- wire format


class TestGraphWireFormat:
    def test_round_trip_preserves_everything(self, raw_graphs):
        encoder = GraphEncoder()
        for graph in raw_graphs:
            restored = program_graph_from_dict(program_graph_to_dict(graph))
            assert restored.name == graph.name
            assert restored.num_nodes == graph.num_nodes
            assert restored.num_edges == graph.num_edges
            assert restored.metadata == graph.metadata
            for original, copy in zip(graph.nodes, restored.nodes):
                assert (original.kind, original.text, original.function) == (
                    copy.kind,
                    copy.text,
                    copy.function,
                )
                assert original.features == copy.features
            assert restored.edges == graph.edges
            # The decoded graph is servably identical: same cache identity.
            assert graph_fingerprint(encoder.encode(restored)) == graph_fingerprint(
                encoder.encode(graph)
            )

    def test_round_trip_survives_json_text(self, raw_graphs):
        text = json.dumps(program_graph_to_dict(raw_graphs[0]))
        restored = program_graph_from_json(text)
        assert restored.num_nodes == raw_graphs[0].num_nodes

    def test_truncated_json_rejected(self, raw_graphs):
        text = json.dumps(program_graph_to_dict(raw_graphs[0]))[:-20]
        with pytest.raises(SerializationError, match="invalid JSON"):
            program_graph_from_json(text)

    def test_unknown_schema_version_rejected(self, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        wire["schema_version"] = GRAPH_SCHEMA_VERSION + 1
        with pytest.raises(SerializationError, match="schema_version"):
            program_graph_from_dict(wire)

    def test_unknown_top_level_field_rejected(self, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        wire["extra"] = 1
        with pytest.raises(SerializationError, match="unknown field"):
            program_graph_from_dict(wire)

    def test_missing_field_rejected(self):
        with pytest.raises(SerializationError, match="missing required field"):
            program_graph_from_dict({"schema_version": GRAPH_SCHEMA_VERSION})

    def test_non_object_rejected(self):
        with pytest.raises(SerializationError, match="JSON object"):
            program_graph_from_dict([1, 2, 3])

    def test_bad_node_kind_rejected(self):
        wire = {
            "schema_version": GRAPH_SCHEMA_VERSION,
            "name": "g",
            "nodes": [{"kind": "gadget", "text": "x", "function": "", "block": "", "features": {}}],
            "edges": [],
            "metadata": {},
        }
        with pytest.raises(SerializationError, match="unknown kind"):
            program_graph_from_dict(wire)

    def test_feature_named_like_a_node_field_is_legal(self):
        # "kind"/"text"/"function"/"block" are valid *feature* names on the
        # wire; they must not collide with the Node constructor arguments.
        wire = {
            "schema_version": GRAPH_SCHEMA_VERSION,
            "name": "g",
            "nodes": [
                {"kind": "instruction", "text": "x", "function": "f", "block": "b",
                 "features": {"kind": 1.0, "text": 2.0, "loop_depth": 3.0}}
            ],
            "edges": [],
            "metadata": {},
        }
        graph = program_graph_from_dict(wire)
        assert graph.nodes[0].kind == "instruction"
        assert graph.nodes[0].features == {"kind": 1.0, "text": 2.0, "loop_depth": 3.0}

    def test_non_string_function_or_block_rejected(self):
        wire = {
            "schema_version": GRAPH_SCHEMA_VERSION,
            "name": "g",
            "nodes": [{"kind": "instruction", "text": "x", "function": 123,
                       "block": "", "features": {}}],
            "edges": [],
            "metadata": {},
        }
        with pytest.raises(SerializationError, match="function"):
            program_graph_from_dict(wire)

    def test_non_numeric_feature_rejected(self):
        wire = {
            "schema_version": GRAPH_SCHEMA_VERSION,
            "name": "g",
            "nodes": [
                {"kind": "instruction", "text": "x", "function": "", "block": "",
                 "features": {"loop_depth": "deep"}}
            ],
            "edges": [],
            "metadata": {},
        }
        with pytest.raises(SerializationError, match="must be a number"):
            program_graph_from_dict(wire)

    def test_edge_out_of_range_rejected(self):
        wire = {
            "schema_version": GRAPH_SCHEMA_VERSION,
            "name": "g",
            "nodes": [{"kind": "instruction", "text": "x", "function": "", "block": "", "features": {}}],
            "edges": [{"source": 0, "target": 5, "flow": "control", "position": 0}],
            "metadata": {},
        }
        with pytest.raises(SerializationError, match="out of range"):
            program_graph_from_dict(wire)

    def test_bad_edge_flow_rejected(self):
        wire = {
            "schema_version": GRAPH_SCHEMA_VERSION,
            "name": "g",
            "nodes": [{"kind": "instruction", "text": "x", "function": "", "block": "", "features": {}}],
            "edges": [{"source": 0, "target": 0, "flow": "teleport", "position": 0}],
            "metadata": {},
        }
        with pytest.raises(SerializationError, match="unknown flow"):
            program_graph_from_dict(wire)

    def test_wrong_shape_edges_rejected(self):
        wire = {
            "schema_version": GRAPH_SCHEMA_VERSION,
            "name": "g",
            "nodes": [],
            "edges": [[0, 1, "control"]],  # list, not an object
            "metadata": {},
        }
        with pytest.raises(SerializationError, match="JSON object"):
            program_graph_from_dict(wire)


# -------------------------------------------------------- checkpoint daemon


class TestCheckpointDaemon:
    def _warm_cache(self, entries=3):
        import numpy as np

        cache = EmbeddingCache(16)
        for i in range(entries):
            cache.put(f"fp{i}", np.full(4, float(i)), np.full(8, float(i)))
        return cache

    def test_interval_checkpointing(self, tmp_path):
        cache = self._warm_cache()
        path = tmp_path / "ckpt.npz"
        daemon = CheckpointDaemon(cache, str(path), interval_s=0.05)
        with daemon:
            deadline = time.monotonic() + 5.0
            while not path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
        assert path.exists()
        restored = EmbeddingCache(16)
        assert restored.load(str(path)) == 3

    def test_stop_writes_final_checkpoint(self, tmp_path):
        cache = self._warm_cache()
        path = tmp_path / "ckpt.npz"
        daemon = CheckpointDaemon(cache, str(path), interval_s=3600.0)
        daemon.start()
        assert not path.exists()  # interval far away, nothing dumped yet
        daemon.stop()
        assert path.exists()
        assert daemon.stats()["checkpoints"] == 1

    def test_unchanged_cache_skips_dump(self, tmp_path):
        import numpy as np

        cache = self._warm_cache()
        daemon = CheckpointDaemon(cache, str(tmp_path / "ckpt.npz"), interval_s=3600.0)
        assert daemon.checkpoint_now() == 3
        assert daemon.checkpoint_now() is None  # no mutation since
        assert daemon.stats()["skipped"] == 1
        cache.put("fresh", np.zeros(4), np.zeros(8))
        assert daemon.checkpoint_now() == 4  # dirty again

    def test_reads_do_not_dirty_the_cache(self, tmp_path):
        cache = self._warm_cache()
        daemon = CheckpointDaemon(cache, str(tmp_path / "ckpt.npz"), interval_s=3600.0)
        daemon.checkpoint_now()
        cache.get("fp0")
        cache.get("nope")
        assert daemon.checkpoint_now() is None

    def test_dump_failure_is_recorded_not_raised(self, tmp_path):
        cache = self._warm_cache()
        bad_path = tmp_path / "not-a-dir-file"
        bad_path.write_text("squatter")
        daemon = CheckpointDaemon(
            cache, str(bad_path / "ckpt.npz"), interval_s=3600.0
        )
        assert daemon.checkpoint_now() is None
        stats = daemon.stats()
        assert stats["failures"] == 1
        assert stats["last_error"] is not None

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CheckpointDaemon(EmbeddingCache(4), "x.npz", interval_s=0.0)

    def test_empty_cache_never_clobbers_an_existing_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        self._warm_cache().dump(str(path))  # a previous run's warm checkpoint
        before = path.read_bytes()
        daemon = CheckpointDaemon(EmbeddingCache(16), str(path), interval_s=3600.0)
        assert daemon.checkpoint_now() is None  # clean (never mutated): skip
        daemon.stop()  # final checkpoint also skips
        assert path.read_bytes() == before

    def test_corrupt_warmup_file_degrades_to_cold_start(self, tmp_path, artifact):
        path = tmp_path / "torn.npz"
        path.write_bytes(b"definitely not an npz file")
        service = make_service(artifact, warmup_path=str(path))
        assert len(service.cache) == 0  # cold, but the server boots
        # The explicit probe still surfaces the real error.
        with pytest.raises(Exception):
            service.warm_up(str(path))


# --------------------------------------------------------- app (no socket)


class TestServingApp:
    @pytest.fixture()
    def app(self, artifact):
        return ServingApp(make_service(artifact))

    def test_unknown_path_is_404(self, app):
        status, payload, _ = app.handle("GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not-found"

    def test_method_mismatch_is_405_with_allow(self, app):
        for method, path, allow in (
            ("POST", "/healthz", "GET, HEAD"),
            ("GET", "/v1/predict", "POST"),
            ("POST", "/v1/models", "GET, HEAD"),
            ("GET", "/v1/models/default/predict", "POST"),
        ):
            status, payload, headers = app.handle(method, path)
            assert status == 405, path
            assert payload["error"]["code"] == "method-not-allowed"
            # Structured 405s carry the Allow header, so clients learn the
            # right verb instead of guessing from a generic 404.
            assert headers["Allow"] == allow, path

    def test_head_is_answered_on_health_and_metrics(self, app):
        for path in ("/healthz", "/metrics", "/v1/models"):
            status, payload, _ = app.handle("HEAD", path)
            assert status == 200, path
            assert payload  # same payload a GET would render (body elided
            # only at the transport layer)

    def test_healthz_reports_identity_and_cache(self, app):
        status, payload, _ = app.handle("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["serving"]["service"] == "single"
        assert payload["serving"]["artifact"] == "demo@v0001"
        assert payload["cache"] == {"enabled": True, "entries": 0, "warm": False}

    def test_metrics_shape(self, app):
        status, payload, _ = app.handle("GET", "/metrics")
        assert status == 200
        assert payload["stats"]["total_requests"] == 0
        assert "cache" in payload["stats"]
        assert payload["checkpoint"] is None

    def test_query_string_and_trailing_slash_are_tolerated(self, app):
        assert app.handle("GET", "/healthz/")[0] == 200
        assert app.handle("GET", "/healthz?verbose=1")[0] == 200

    def test_predict_without_start_uses_sync_path(self, app, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        status, payload, _ = app.handle(
            "POST", "/v1/predict", json.dumps({"graph": wire}).encode()
        )
        assert status == 200
        assert 0 <= payload["result"]["label"] < NUM_LABELS

    def test_empty_body_is_400(self, app):
        status, payload, _ = app.handle("POST", "/v1/predict", b"")
        assert status == 400
        assert payload["error"]["code"] == "invalid-request"

    def test_both_graph_and_graphs_is_400(self, app, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        body = json.dumps({"graph": wire, "graphs": [wire]}).encode()
        status, payload, _ = app.handle("POST", "/v1/predict", body)
        assert status == 400
        assert "exactly one" in payload["error"]["message"]

    def test_non_object_body_is_400(self, app):
        status, payload, _ = app.handle("POST", "/v1/predict", b"[1, 2]")
        assert status == 400

    def test_graphs_must_be_a_list(self, app):
        status, payload, _ = app.handle(
            "POST", "/v1/predict", json.dumps({"graphs": {"not": "a list"}}).encode()
        )
        assert status == 400
        assert "list" in payload["error"]["message"]

    def test_stalled_prediction_is_504_timeout(self, artifact, raw_graphs, monkeypatch):
        import concurrent.futures

        app = ServingApp(make_service(artifact), request_timeout_s=0.05)
        app.start()
        try:
            predictor = app.hub.resolve(None).predictor
            # A future nobody ever completes: the batcher worker "lost" the
            # request, so the deadline is the only way the client gets out.
            stalled = concurrent.futures.Future()
            monkeypatch.setattr(predictor, "submit", lambda graph: stalled)
            body = json.dumps(
                {"graph": program_graph_to_dict(raw_graphs[0])}
            ).encode()
            status, payload, _ = app.handle("POST", "/v1/predict", body)
            assert status == 504
            assert payload["error"]["code"] == "timeout"
            assert "did not complete" in payload["error"]["message"]
            # The abandoned request must be cancelled, not left to occupy a
            # batch slot forever.
            assert stalled.cancelled()
        finally:
            app.stop()

    def test_invalid_graph_in_batch_names_its_index(self, app, raw_graphs):
        good = program_graph_to_dict(raw_graphs[0])
        bad = program_graph_to_dict(raw_graphs[1])
        bad["schema_version"] = 99
        body = json.dumps({"graphs": [good, bad]}).encode()
        status, payload, _ = app.handle("POST", "/v1/predict", body)
        assert status == 400
        assert payload["error"]["code"] == "invalid-graph"
        assert "graphs[1]" in payload["error"]["message"]


# ----------------------------------------------------------- real sockets


@pytest.fixture(scope="module")
def server(artifact):
    service = make_service(artifact, max_wait_s=0.005)
    with PredictionHTTPServer(service) as running:
        yield running


def _request(server, method, path, payload=None, raw_body=None, headers=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        body = raw_body
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestHTTPServer:
    def test_single_predict_matches_in_process(self, server, artifact, raw_graphs):
        reference = PredictionService.from_artifact(artifact)
        expected = [r.label for r in reference.predict_many(raw_graphs)]
        got = []
        for graph in raw_graphs:
            status, payload = _request(
                server, "POST", "/v1/predict", {"graph": program_graph_to_dict(graph)}
            )
            assert status == 200
            result = payload["result"]
            got.append(result["label"])
            assert len(result["probabilities"]) == NUM_LABELS
            assert result["fingerprint"]
        assert got == expected

    def test_batch_predict_matches_in_process(self, server, artifact, raw_graphs):
        reference = PredictionService.from_artifact(artifact)
        expected = [r.label for r in reference.predict_many(raw_graphs)]
        status, payload = _request(
            server,
            "POST",
            "/v1/predict",
            {"graphs": [program_graph_to_dict(g) for g in raw_graphs]},
        )
        assert status == 200
        assert payload["count"] == len(raw_graphs)
        assert [r["label"] for r in payload["results"]] == expected

    def test_repeat_is_a_cache_hit(self, server, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        _request(server, "POST", "/v1/predict", {"graph": wire})
        status, payload = _request(server, "POST", "/v1/predict", {"graph": wire})
        assert status == 200
        assert payload["result"]["cache_hit"] is True

    def test_concurrent_clients_share_micro_batches(self, artifact, raw_graphs):
        # A dedicated server with a wide batching window so concurrent
        # HTTP handler threads demonstrably coalesce into shared batches.
        service = make_service(artifact, max_wait_s=0.25, enable_cache=False)
        clients = 12
        with PredictionHTTPServer(service) as running:
            results = [None] * clients
            errors = []

            def worker(i):
                try:
                    graph = raw_graphs[i % len(raw_graphs)]
                    results[i] = _request(
                        running,
                        "POST",
                        "/v1/predict",
                        {"graph": program_graph_to_dict(graph)},
                    )
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert not errors
            assert all(status == 200 for status, _ in results)
            snapshot = service.stats.snapshot()
        assert snapshot["total_requests"] == clients
        # At least one RGCN forward pass served several HTTP requests.
        assert max(snapshot["batch_histogram"]) > 1

    def test_error_mapping_over_the_wire(self, server, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        bad_schema = dict(wire, schema_version=99)
        cases = [
            ("POST", "/v1/predict", None, b"{truncated", 400, "invalid-json"),
            ("POST", "/v1/predict", {"nope": 1}, None, 400, "invalid-request"),
            ("POST", "/v1/predict", {"graph": bad_schema}, None, 400, "invalid-graph"),
            ("POST", "/healthz", {}, None, 405, "method-not-allowed"),
            ("GET", "/v1/predict", None, None, 405, "method-not-allowed"),
            ("GET", "/nope", None, None, 404, "not-found"),
        ]
        for method, path, payload, raw, status, code in cases:
            got_status, got_payload = _request(
                server, method, path, payload=payload, raw_body=raw
            )
            assert (got_status, got_payload["error"]["code"]) == (status, code), path

    def test_oversized_body_is_413_and_closes_the_connection(self, artifact):
        service = make_service(artifact)
        with PredictionHTTPServer(service, max_body_bytes=64) as running:
            connection = http.client.HTTPConnection(
                running.host, running.port, timeout=30
            )
            try:
                connection.request("POST", "/v1/predict", body=b"x" * 256)
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 413
                assert payload["error"]["code"] == "payload-too-large"
                # The unread body would desync a keep-alive connection, so
                # the server must close it after the error.
                assert response.getheader("Connection") == "close"
            finally:
                connection.close()
            # The server itself stays healthy for fresh connections.
            status, health = _request(running, "GET", "/healthz")
            assert (status, health["status"]) == (200, "ok")

    def test_post_without_content_length_is_411(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            # http.client normally sets Content-Length for us; drive the
            # request by hand to send a POST without one.
            connection.putrequest("POST", "/v1/predict")
            connection.endheaders()
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 411
            assert payload["error"]["code"] == "length-required"
        finally:
            connection.close()

    def test_get_with_a_body_closes_the_connection(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.request("GET", "/metrics", body=b"hello")
            response = connection.getresponse()
            assert response.status == 200
            json.loads(response.read())
            # The body is never read, so the keep-alive connection must
            # close instead of parsing "hello" as the next request line.
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_head_over_the_wire_has_length_but_no_body(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            for path in ("/healthz", "/metrics"):
                connection.request("HEAD", path)
                response = connection.getresponse()
                body = response.read()
                assert response.status == 200, path
                # Content-Length advertises what GET would send; the body
                # itself is elided per the HTTP spec.
                assert int(response.getheader("Content-Length")) > 0
                assert body == b""
        finally:
            connection.close()

    def test_405_over_the_wire_carries_allow(self, server):
        status, payload = _request(server, "POST", "/healthz", payload={})
        assert status == 405
        assert payload["error"]["code"] == "method-not-allowed"
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.request("POST", "/metrics", body=b"{}")
            response = connection.getresponse()
            response.read()
            assert response.status == 405
            assert response.getheader("Allow") == "GET, HEAD"
        finally:
            connection.close()

    def test_healthz_and_metrics_over_the_wire(self, server):
        status, health = _request(server, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["serving"]["artifact"] == "demo@v0001"

        status, metrics = _request(server, "GET", "/metrics")
        assert status == 200
        assert metrics["stats"]["total_requests"] >= 1
        assert metrics["stats"]["cache"]["capacity"] >= 1

    def test_connection_lifecycle_invariants(self):
        from repro.serving.http import _RequestHandler

        # Slow-loris protection: blocked reads must time out rather than
        # pin a handler thread forever...
        assert _RequestHandler.timeout is not None
        assert 0 < _RequestHandler.timeout <= 60
        # ...and handlers must be joinable so close() drains in-flight
        # requests before the final checkpoint is written.
        assert PredictionHTTPServer.daemon_threads is False

    def test_closed_server_cannot_restart(self, artifact):
        server = PredictionHTTPServer(make_service(artifact))
        server.start()
        server.close()
        with pytest.raises(RuntimeError):
            server.start()


class TestEnsembleOverHTTP:
    def test_ensemble_fields_on_the_wire(self, tmp_path, raw_graphs):
        registry = ArtifactRegistry(tmp_path)
        for fold, seed in enumerate((1, 2, 3)):
            registry.save(f"ens-fold{fold}", small_predictor(seed=seed))
        service = EnsemblePredictionService.from_registry(
            str(tmp_path), "ens", config=EnsembleConfig(max_wait_s=0.005)
        )
        expected = service.predict(raw_graphs[0])
        with PredictionHTTPServer(service) as running:
            status, payload = _request(
                running,
                "POST",
                "/v1/predict",
                {"graph": program_graph_to_dict(raw_graphs[0])},
            )
            assert status == 200
            result = payload["result"]
            assert result["label"] == expected.label
            assert result["agreement"] == pytest.approx(expected.agreement)
            assert set(result["per_fold_labels"]) == {"0", "1", "2"}

            status, health = _request(running, "GET", "/healthz")
            assert health["serving"]["service"] == "ensemble"
            assert len(health["serving"]["members"]) == 3


class TestCLI:
    def test_warmup_without_cache_is_rejected(self, tmp_path, capsys):
        from repro.serving.__main__ import main as serve_main

        code = serve_main(
            ["--root", str(tmp_path), "--name", "x", "--no-cache",
             "--warmup-path", str(tmp_path / "w.npz")]
        )
        assert code == 2
        assert "require the cache" in capsys.readouterr().err


class TestCheckpointRestartOverHTTP:
    def test_stop_checkpoints_results_computed_during_drain(
        self, tmp_path, artifact, raw_graphs
    ):
        # Requests still queued at stop() are drained by the batcher and
        # must land in the final checkpoint (the daemon stops *after* the
        # service).
        checkpoint_path = str(tmp_path / "drain.npz")
        service = make_service(artifact, max_wait_s=0.2)
        daemon = CheckpointDaemon(service.cache, checkpoint_path, interval_s=3600.0)
        app = ServingApp(service, checkpoint=daemon)
        app.start()
        futures = [service.submit(graph) for graph in raw_graphs]
        app.stop()
        assert all(future.done() for future in futures)
        assert len(service.cache) > 0
        restored = EmbeddingCache(256)
        assert restored.load(checkpoint_path) == len(service.cache)

    def test_kill_restart_answers_first_burst_warm(
        self, tmp_path, artifact, raw_graphs
    ):
        checkpoint_path = str(tmp_path / "cache.npz")
        wire_graphs = [program_graph_to_dict(g) for g in raw_graphs]

        service = make_service(artifact)
        daemon = CheckpointDaemon(service.cache, checkpoint_path, interval_s=3600.0)
        with PredictionHTTPServer(service, checkpoint=daemon) as running:
            status, first = _request(
                running, "POST", "/v1/predict", {"graphs": wire_graphs}
            )
            assert status == 200
            assert not any(r["cache_hit"] for r in first["results"])
            expected = [r["label"] for r in first["results"]]
        # close() stopped the daemon, which wrote the final checkpoint.
        assert daemon.stats()["checkpoints"] >= 1

        restarted = make_service(artifact, warmup_path=checkpoint_path)
        with PredictionHTTPServer(restarted) as running:
            status, health = _request(running, "GET", "/healthz")
            assert health["cache"]["warm"] is True
            status, burst = _request(
                running, "POST", "/v1/predict", {"graphs": wire_graphs}
            )
            assert status == 200
            assert all(r["cache_hit"] for r in burst["results"])
            assert [r["label"] for r in burst["results"]] == expected
