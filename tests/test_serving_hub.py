"""Tests for the multi-model serving hub.

Covers the declarative :class:`DeploymentSpec` (validation + wire codec),
the shared :class:`BatcherWorkerPool`, :class:`ModelHub` runtime mutation
(load/unload/reload, aliases, default routing, the shared namespaced
cache), parity of hub-served answers with the legacy single-model
entrypoints (bit-identical, in-process and over HTTP — including one
process serving a single-fold model next to a 5-fold ensemble), and the
concurrency contract: load/unload/alias flips racing in-flight predicts
never 500 and never serve a torn deployment.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core import StaticConfigurationPredictor, StaticModelConfig
from repro.graphs import GraphBuilder, GraphEncoder
from repro.serving import (
    ArtifactNotFoundError,
    ArtifactRegistry,
    BatcherWorkerPool,
    Deployment,
    DeploymentExistsError,
    DeploymentNotFoundError,
    DeploymentSpec,
    DeploymentSpecError,
    EnsembleConfig,
    EnsemblePredictionService,
    HubError,
    ModelHub,
    PredictionHTTPServer,
    PredictionService,
    Predictor,
    ServiceConfig,
    ServingApp,
    deployment_spec_from_dict,
    deployment_spec_to_dict,
    program_graph_to_dict,
)

NUM_LABELS = 4
ENSEMBLE_FOLDS = 5


def small_predictor(seed=3):
    """A small (untrained — weights are deterministic) predictor."""
    return StaticConfigurationPredictor(
        num_labels=NUM_LABELS,
        encoder=GraphEncoder(),
        config=StaticModelConfig(
            hidden_dim=8, graph_vector_dim=8, num_rgcn_layers=1, epochs=1, seed=seed
        ),
    )


@pytest.fixture(scope="module")
def raw_graphs(small_suite):
    builder = GraphBuilder()
    return [builder.build_module(region.module) for region in small_suite][:6]


@pytest.fixture(scope="module")
def registry_root(tmp_path_factory):
    """A read-only module registry: 'demo' (two versions) + a 5-fold group."""
    root = tmp_path_factory.mktemp("hub-registry")
    registry = ArtifactRegistry(root)
    registry.save("demo", small_predictor(seed=1))  # v0001
    registry.save("demo", small_predictor(seed=2))  # v0002 (the latest)
    for fold in range(ENSEMBLE_FOLDS):
        registry.save(f"ens-fold{fold}", small_predictor(seed=10 + fold))
    return str(root)


def result_payloads(results, drop=("latency_s", "cache_hit")):
    """Wire-encode in-process results, minus the timing-dependent fields."""
    from repro.serving import result_to_dict

    encoded = []
    for result in results:
        payload = result_to_dict(result)
        for key in drop:
            payload.pop(key, None)
        encoded.append(payload)
    return encoded


def strip(payload, drop=("latency_s", "cache_hit")):
    return {key: value for key, value in payload.items() if key not in drop}


def _request(server, method, path, payload=None, raw_body=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        body = raw_body
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


# ---------------------------------------------------------- deployment spec


class TestDeploymentSpec:
    def test_single_and_ensemble_kinds(self):
        single = DeploymentSpec(name="m", artifact="demo", version="v0001")
        assert (single.kind, single.target) == ("single", "demo")
        ensemble = DeploymentSpec(name="e", fold_group="ens", strategy="majority-vote")
        assert (ensemble.kind, ensemble.target) == ("ensemble", "ens")

    def test_exactly_one_target_required(self):
        with pytest.raises(DeploymentSpecError, match="exactly one"):
            DeploymentSpec(name="m")
        with pytest.raises(DeploymentSpecError, match="exactly one"):
            DeploymentSpec(name="m", artifact="a", fold_group="b")

    def test_latest_normalises_to_none(self):
        assert DeploymentSpec(name="m", artifact="a", version="latest").version is None

    def test_bad_version_pin_rejected(self):
        with pytest.raises(DeploymentSpecError, match="version pin"):
            DeploymentSpec(name="m", artifact="a", version="1.2.3")

    def test_version_pin_on_ensemble_rejected(self):
        with pytest.raises(DeploymentSpecError, match="version"):
            DeploymentSpec(name="m", fold_group="ens", version="v0001")

    def test_folds_only_for_ensembles(self):
        with pytest.raises(DeploymentSpecError, match="folds"):
            DeploymentSpec(name="m", artifact="a", folds=(0, 1))

    def test_url_hostile_names_rejected(self):
        for name in ("", "a/b", ".hidden", "-flag", "a b", "a" * 200):
            with pytest.raises(DeploymentSpecError, match="name"):
                DeploymentSpec(name=name, artifact="a")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(DeploymentSpecError, match="strategy"):
            DeploymentSpec(name="m", fold_group="ens", strategy="coin-flip")

    def test_knob_validation_is_shared_with_legacy_configs(self):
        with pytest.raises(DeploymentSpecError, match="max_batch_size"):
            DeploymentSpec(name="m", artifact="a", max_batch_size=0)

    def test_config_projection(self):
        spec = DeploymentSpec(
            name="m", fold_group="ens", strategy="majority-vote", max_batch_size=7
        )
        assert isinstance(spec.ensemble_config(), EnsembleConfig)
        assert spec.ensemble_config().strategy == "majority-vote"
        assert spec.ensemble_config().max_batch_size == 7
        single = DeploymentSpec(name="m", artifact="a", max_wait_s=0.5)
        assert isinstance(single.service_config(), ServiceConfig)
        assert single.service_config().max_wait_s == 0.5

    def test_wire_round_trip(self):
        spec = DeploymentSpec(
            name="e", fold_group="ens", strategy="majority-vote", folds=(0, 2)
        )
        assert deployment_spec_from_dict(deployment_spec_to_dict(spec)) == spec

    def test_wire_unknown_field_rejected(self):
        with pytest.raises(DeploymentSpecError, match="unknown field"):
            deployment_spec_from_dict({"name": "m", "artifact": "a", "nope": 1})

    def test_wire_name_from_path_cross_checked(self):
        data = {"artifact": "a"}
        assert deployment_spec_from_dict(data, name="m").name == "m"
        with pytest.raises(DeploymentSpecError, match="addressed"):
            deployment_spec_from_dict({"name": "other", "artifact": "a"}, name="m")

    def test_wire_non_object_rejected(self):
        with pytest.raises(DeploymentSpecError, match="object"):
            deployment_spec_from_dict([1, 2])

    def test_both_frontends_satisfy_the_predictor_protocol(self):
        service = PredictionService(
            model=small_predictor().model, encoder=GraphEncoder()
        )
        assert isinstance(service, Predictor)


# ------------------------------------------------------- shared batcher pool


class TestBatcherWorkerPool:
    def test_one_pool_drains_many_queues(self):
        pool = BatcherWorkerPool(workers=2)
        seen = {"a": [], "b": []}

        def runner(key):
            def run(items):
                seen[key].append(len(items))
                return [f"{key}:{item}" for item in items]

            return run

        with pool:
            qa = pool.batcher_factory(runner("a"), max_batch_size=8, max_wait_s=0.005)
            qb = pool.batcher_factory(runner("b"), max_batch_size=8, max_wait_s=0.005)
            qa.start()
            qb.start()
            futures = [qa.submit(i) for i in range(4)] + [qb.submit(i) for i in range(3)]
            results = [future.result(timeout=5) for future in futures]
        assert results == ["a:0", "a:1", "a:2", "a:3", "b:0", "b:1", "b:2"]
        telemetry = pool.telemetry()
        assert telemetry["items_dispatched"] == 7
        assert telemetry["workers"] == 2

    def test_submits_before_start_form_one_batch(self):
        pool = BatcherWorkerPool(workers=1)
        batches = []

        def runner(items):
            batches.append(len(items))
            return list(items)

        queue = pool.batcher_factory(runner, max_batch_size=16, max_wait_s=0.0)
        futures = [queue.submit(i) for i in range(5)]
        time.sleep(0.02)  # nothing drains before start()
        assert not batches
        queue.start()
        assert [future.result(timeout=5) for future in futures] == list(range(5))
        assert batches == [5]
        pool.close()

    def test_max_batch_size_splits_dispatch(self):
        pool = BatcherWorkerPool(workers=1)
        batches = []

        def runner(items):
            batches.append(len(items))
            return list(items)

        queue = pool.batcher_factory(runner, max_batch_size=2, max_wait_s=0.0)
        futures = [queue.submit(i) for i in range(5)]
        queue.start()
        for future in futures:
            future.result(timeout=5)
        assert sorted(batches, reverse=True) == [2, 2, 1]
        pool.close()

    def test_runner_error_propagates_to_the_batch(self):
        pool = BatcherWorkerPool(workers=1)

        def runner(items):
            raise RuntimeError("boom")

        with pool:
            queue = pool.batcher_factory(runner, max_wait_s=0.0).start()
            future = queue.submit(1)
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=5)

    def test_close_drains_queued_work(self):
        pool = BatcherWorkerPool(workers=1)
        queue = pool.batcher_factory(lambda items: list(items), max_batch_size=64, max_wait_s=5.0)
        queue.start()
        futures = [queue.submit(i) for i in range(3)]
        queue.close()  # skips the 5s batching window: closing = dispatchable
        assert [future.result(timeout=1) for future in futures] == [0, 1, 2]
        pool.close()

    def test_close_before_start_fails_pending_futures(self):
        pool = BatcherWorkerPool(workers=1)
        queue = pool.batcher_factory(lambda items: list(items))
        future = queue.submit(1)
        queue.close()
        with pytest.raises(RuntimeError, match="closed before start"):
            future.result(timeout=1)
        with pytest.raises(RuntimeError):
            queue.submit(2)
        pool.close()

    def test_pool_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            BatcherWorkerPool(workers=0)

    def test_pool_reopens_after_a_completed_close(self):
        pool = BatcherWorkerPool(workers=1)
        first = pool.batcher_factory(lambda items: list(items), max_wait_s=0.0).start()
        assert first.submit(1).result(timeout=5) == 1
        pool.close()
        # A fully-closed pool reopens on the next registration (a stopped
        # hub can start again; post-stop submits restart on demand).
        second = pool.batcher_factory(lambda items: list(items), max_wait_s=0.0).start()
        assert second.submit(2).result(timeout=5) == 2
        pool.close()

    def test_timed_out_close_still_resolves_queued_futures(self):
        pool = BatcherWorkerPool(workers=1)
        release = threading.Event()

        def runner(items):
            release.wait(5)
            return list(items)

        queue = pool.batcher_factory(runner, max_batch_size=1, max_wait_s=0.0).start()
        first = queue.submit(1)  # occupies the only worker until released
        time.sleep(0.05)
        second = queue.submit(2)  # still queued when close() times out
        queue.close(timeout=0.05)
        release.set()
        # The member stayed registered, so the pool drains the leftover
        # item instead of stranding its future forever.
        assert first.result(timeout=5) == 1
        assert second.result(timeout=5) == 2
        pool.close()


# ----------------------------------------------------------------- the hub


class TestModelHub:
    def make_hub(self, registry_root, **overrides):
        defaults = dict(cache_capacity=256, pool_workers=1)
        defaults.update(overrides)
        return ModelHub(registry_root, **defaults)

    def test_load_single_and_ensemble(self, registry_root, raw_graphs):
        hub = self.make_hub(registry_root)
        hub.load(DeploymentSpec(name="demo", artifact="demo"))
        hub.load(DeploymentSpec(name="ens", fold_group="ens"))
        assert hub.names() == ["demo", "ens"]
        assert len(hub) == 2
        single = hub.predict("demo", raw_graphs[0])
        assert 0 <= single.label < NUM_LABELS
        combined = hub.predict("ens", raw_graphs[0])
        assert len(combined.per_fold_labels) == ENSEMBLE_FOLDS
        # Served from the registry's latest version.
        describe = hub.resolve("demo").describe()
        assert describe["serving"]["artifact"] == "demo@v0002"
        hub.stop()

    def test_version_pin(self, registry_root):
        hub = self.make_hub(registry_root)
        hub.load(DeploymentSpec(name="old", artifact="demo", version="v0001"))
        assert hub.resolve("old").describe()["serving"]["artifact"] == "demo@v0001"
        hub.stop()

    def test_duplicate_name_rejected_unless_replaced(self, registry_root):
        hub = self.make_hub(registry_root)
        hub.load(DeploymentSpec(name="m", artifact="demo"))
        with pytest.raises(DeploymentExistsError):
            hub.load(DeploymentSpec(name="m", artifact="demo"))
        replacement = hub.load(
            DeploymentSpec(name="m", artifact="demo", version="v0001"), replace=True
        )
        assert replacement.describe()["serving"]["artifact"] == "demo@v0001"
        hub.stop()

    def test_unknown_artifact_fails_load(self, registry_root):
        hub = self.make_hub(registry_root)
        with pytest.raises(ArtifactNotFoundError):
            hub.load(DeploymentSpec(name="m", artifact="nope"))
        assert hub.names() == []
        hub.stop()

    def test_unload_and_default_reassignment(self, registry_root):
        hub = self.make_hub(registry_root)
        hub.load(DeploymentSpec(name="a", artifact="demo"))
        hub.load(DeploymentSpec(name="b", artifact="demo"))
        assert hub.default_name == "a"  # first load wins
        hub.unload("a")
        assert hub.default_name == "b"  # sole survivor inherits
        with pytest.raises(DeploymentNotFoundError):
            hub.resolve("a")
        with pytest.raises(DeploymentNotFoundError):
            hub.unload("a")
        hub.stop()

    def test_alias_flip_and_guards(self, registry_root, raw_graphs):
        hub = self.make_hub(registry_root)
        hub.load(DeploymentSpec(name="v1", artifact="demo", version="v0001"))
        hub.load(DeploymentSpec(name="v2", artifact="demo", version="v0002"))
        hub.alias("prod", "v1")
        assert hub.resolve("prod").name == "v1"
        hub.alias("prod", "v2")  # the flip
        assert hub.resolve("prod").name == "v2"
        # Guards: alias to nowhere, alias shadowing a model, model
        # shadowing an alias, unloading an alias target.
        with pytest.raises(DeploymentNotFoundError):
            hub.alias("prod2", "nope")
        with pytest.raises(DeploymentExistsError):
            hub.alias("v1", "v2")
        with pytest.raises(DeploymentExistsError):
            hub.load(DeploymentSpec(name="prod", artifact="demo"))
        with pytest.raises(HubError, match="alias"):
            hub.unload("v2")
        hub.unalias("prod")
        hub.unload("v2")  # fine once the alias is gone
        with pytest.raises(DeploymentNotFoundError):
            hub.unalias("prod")
        hub.stop()

    def test_reload_picks_up_new_latest_version(self, tmp_path, raw_graphs):
        registry = ArtifactRegistry(tmp_path)
        registry.save("m", small_predictor(seed=1))
        hub = ModelHub(str(tmp_path), pool_workers=1)
        hub.load(DeploymentSpec(name="m", artifact="m"))
        before = hub.predict("m", raw_graphs[0])
        assert hub.resolve("m").describe()["serving"]["artifact"] == "m@v0001"
        registry.save("m", small_predictor(seed=99))
        reloaded = hub.reload("m")
        assert reloaded.describe()["serving"]["artifact"] == "m@v0002"
        after = hub.predict("m", raw_graphs[0])
        assert not np.array_equal(before.probabilities, after.probabilities)
        hub.stop()

    def test_adopted_deployments_cannot_reload(self, registry_root):
        hub = ModelHub()  # no registry at all
        service = PredictionService(
            model=small_predictor().model, encoder=GraphEncoder()
        )
        deployment = hub.adopt("legacy", service)
        assert isinstance(deployment, Deployment) and deployment.adopted
        with pytest.raises(HubError, match="spec"):
            hub.reload("legacy")
        with pytest.raises(HubError, match="registry"):
            hub.load(DeploymentSpec(name="m", artifact="demo"))
        hub.stop()

    def test_default_routing(self, registry_root, raw_graphs):
        hub = self.make_hub(registry_root)
        with pytest.raises(DeploymentNotFoundError, match="default"):
            hub.resolve(None)
        hub.load(DeploymentSpec(name="a", artifact="demo"))
        hub.load(DeploymentSpec(name="b", fold_group="ens"))
        assert hub.resolve(None).name == "a"
        hub.set_default("b")
        assert hub.resolve(None).name == "b"
        with pytest.raises(DeploymentNotFoundError):
            hub.set_default("nope")
        hub.stop()

    def test_shared_cache_is_namespaced_per_model(self, registry_root, raw_graphs):
        hub = self.make_hub(registry_root)
        hub.load(DeploymentSpec(name="demo", artifact="demo"))
        hub.load(DeploymentSpec(name="ens", fold_group="ens"))
        hub.predict_many("demo", raw_graphs[:3])
        hub.predict_many("ens", raw_graphs[:2])
        demo = hub.resolve("demo").predictor
        ens = hub.resolve("ens").predictor
        # One shared table, disjoint namespaces.
        assert demo.cache is hub.cache and ens.cache is hub.cache
        assert hub.cache.namespace_size(demo.cache_namespace()) == 3
        assert hub.cache.namespace_size(ens.cache_namespace()) == 2
        assert len(hub.cache) == 5
        # Per-model health reports per-model warmth of the shared cache.
        assert hub.model_health("demo")["cache"]["entries"] == 3
        assert hub.model_health("ens")["cache"]["entries"] == 2
        # Replaying through the hub hits the shared cache.
        again = hub.predict("demo", raw_graphs[0])
        assert again.cache_hit
        hub.stop()

    def test_spec_can_opt_out_of_the_shared_cache(self, registry_root, raw_graphs):
        hub = self.make_hub(registry_root)
        hub.load(DeploymentSpec(name="nocache", artifact="demo", enable_cache=False))
        hub.predict("nocache", raw_graphs[0])
        assert hub.resolve("nocache").predictor.cache is None
        assert len(hub.cache) == 0
        hub.stop()

    def test_snapshot_aggregates_across_models(self, registry_root, raw_graphs):
        hub = self.make_hub(registry_root)
        hub.load(DeploymentSpec(name="demo", artifact="demo"))
        hub.load(DeploymentSpec(name="ens", fold_group="ens"))
        hub.predict_many("demo", raw_graphs[:3])
        hub.predict_many("ens", raw_graphs[:3])
        snapshot = hub.snapshot()
        assert set(snapshot["models"]) == {"demo", "ens"}
        aggregate = snapshot["aggregate"]
        assert aggregate["models"] == 2
        assert aggregate["total_requests"] == 6
        assert (
            aggregate["engine"]["fanned_folds"]
            == snapshot["models"]["demo"]["engine"]["fanned_folds"]
            + snapshot["models"]["ens"]["engine"]["fanned_folds"]
        )
        assert snapshot["pool"]["workers"] == 1
        assert snapshot["cache"]["size"] == len(hub.cache)
        hub.stop()

    def test_hub_can_restart_after_stop(self, registry_root, raw_graphs):
        hub = self.make_hub(registry_root)
        hub.load(DeploymentSpec(name="m", artifact="demo", max_wait_s=0.001))
        with hub:
            assert hub.submit("m", raw_graphs[0]).result(timeout=10).label >= 0
        # The context manager stopped everything; a second lifecycle (and
        # post-stop submits, which restart batchers on demand) must work.
        with hub:
            assert hub.submit("m", raw_graphs[1]).result(timeout=10).label >= 0
        assert hub.submit("m", raw_graphs[2]).result(timeout=10).label >= 0
        hub.stop()

    def test_checkpoint_requires_cache(self, tmp_path):
        with pytest.raises(HubError, match="cache"):
            ModelHub(
                str(tmp_path), enable_cache=False, checkpoint_path=str(tmp_path / "c.npz")
            )


# ----------------------------------------------- parity with the legacy API


class TestHubParity:
    @pytest.fixture(scope="class")
    def hub_server(self, registry_root):
        """One process serving a single-fold model and a 5-fold ensemble."""
        hub = ModelHub(registry_root, cache_capacity=512)
        hub.load(DeploymentSpec(name="demo", artifact="demo", max_wait_s=0.005))
        hub.load(DeploymentSpec(name="ens", fold_group="ens", max_wait_s=0.005))
        with PredictionHTTPServer(hub) as running:
            yield running

    def test_single_fold_results_bit_identical_in_process(
        self, registry_root, raw_graphs
    ):
        hub = ModelHub(registry_root)
        hub.load(DeploymentSpec(name="demo", artifact="demo"))
        legacy = PredictionService.from_registry(registry_root, "demo")
        via_hub = result_payloads(hub.predict_many("demo", raw_graphs))
        via_legacy = result_payloads(legacy.predict_many(raw_graphs))
        assert via_hub == via_legacy
        hub.stop()

    def test_five_fold_ensemble_bit_identical_in_process(
        self, registry_root, raw_graphs
    ):
        hub = ModelHub(registry_root)
        hub.load(
            DeploymentSpec(name="ens", fold_group="ens", strategy="majority-vote")
        )
        legacy = EnsemblePredictionService.from_registry(
            registry_root, "ens", config=EnsembleConfig(strategy="majority-vote")
        )
        assert legacy.num_members == ENSEMBLE_FOLDS
        via_hub = result_payloads(hub.predict_many("ens", raw_graphs))
        via_legacy = result_payloads(legacy.predict_many(raw_graphs))
        assert via_hub == via_legacy
        hub.stop()

    def test_one_server_two_models_matches_legacy_servers(
        self, hub_server, registry_root, raw_graphs
    ):
        """The acceptance bar: ≥2 named deployments (single + 5-fold
        ensemble) in one server, each bit-identical to the same artifact
        served by the legacy single-model entrypoint."""
        wire = [program_graph_to_dict(graph) for graph in raw_graphs]
        status, listing = _request(hub_server, "GET", "/v1/models")
        assert status == 200
        assert set(listing["models"]) == {"demo", "ens"}
        assert listing["count"] == 2

        # Legacy reference answers, served the PR-3 way (one service, one
        # process, unnamed route).
        legacy_single = PredictionService.from_registry(
            registry_root, "demo", config=ServiceConfig(max_wait_s=0.005)
        )
        legacy_ensemble = EnsemblePredictionService.from_registry(
            registry_root, "ens", config=EnsembleConfig(max_wait_s=0.005)
        )
        for name, legacy in (("demo", legacy_single), ("ens", legacy_ensemble)):
            with PredictionHTTPServer(legacy) as reference:
                status, expected = _request(
                    reference, "POST", "/v1/predict", {"graphs": wire}
                )
                assert status == 200
            status, got = _request(
                hub_server, "POST", f"/v1/models/{name}/predict", {"graphs": wire}
            )
            assert status == 200
            assert [strip(r) for r in got["results"]] == [
                strip(r) for r in expected["results"]
            ]

        # Single requests ride the batcher and agree with the batch path.
        status, single = _request(
            hub_server, "POST", "/v1/models/ens/predict", {"graph": wire[0]}
        )
        assert status == 200
        assert len(single["result"]["per_fold_labels"]) == ENSEMBLE_FOLDS

    def test_per_model_routes_and_metrics(self, hub_server, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        _request(hub_server, "POST", "/v1/models/demo/predict", {"graph": wire})

        status, health = _request(hub_server, "GET", "/v1/models/demo")
        assert status == 200
        assert health["model"]["serving"]["service"] == "single"
        assert health["model"]["spec"]["artifact"] == "demo"
        assert health["cache"]["warm"] is True

        status, metrics = _request(hub_server, "GET", "/v1/models/demo/metrics")
        assert status == 200
        assert metrics["model"] == "demo"
        assert metrics["stats"]["total_requests"] >= 1

        # The global metrics document carries one section per model.
        status, metrics = _request(hub_server, "GET", "/metrics")
        assert status == 200
        assert set(metrics["hub"]["models"]) == {"demo", "ens"}
        assert metrics["hub"]["aggregate"]["models"] == 2
        assert metrics["hub"]["pool"]["workers"] >= 1

        status, health = _request(hub_server, "GET", "/healthz")
        assert status == 200
        assert set(health["models"]) == {"demo", "ens"}
        # Legacy healthz keys survive for PR-3 era clients.
        assert health["status"] == "ok" and "cache" in health

    def test_unknown_model_is_structured_404(self, hub_server, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        status, payload = _request(
            hub_server, "POST", "/v1/models/nope/predict", {"graph": wire}
        )
        assert status == 404
        assert payload["error"]["code"] == "model-not-found"
        status, payload = _request(hub_server, "GET", "/v1/models/nope")
        assert (status, payload["error"]["code"]) == (404, "model-not-found")


# -------------------------------------------------------- admin over HTTP


class TestHubAdminHTTP:
    @pytest.fixture()
    def server(self, registry_root):
        hub = ModelHub(registry_root, cache_capacity=256)
        hub.load(DeploymentSpec(name="base", artifact="demo"))
        with PredictionHTTPServer(hub) as running:
            yield running

    def test_load_predict_unload_cycle(self, server, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        status, loaded = _request(
            server, "POST", "/v1/models/extra/load", {"artifact": "demo", "version": "v0001"}
        )
        assert status == 200
        assert loaded["loaded"] == "extra"
        assert loaded["model"]["serving"]["artifact"] == "demo@v0001"

        status, answer = _request(
            server, "POST", "/v1/models/extra/predict", {"graph": wire}
        )
        assert status == 200 and "result" in answer

        status, unloaded = _request(server, "POST", "/v1/models/extra/unload")
        assert status == 200 and unloaded["unloaded"] == "extra"
        status, payload = _request(
            server, "POST", "/v1/models/extra/predict", {"graph": wire}
        )
        assert (status, payload["error"]["code"]) == (404, "model-not-found")

    def test_load_conflicts_and_replace(self, server):
        status, payload = _request(
            server, "POST", "/v1/models/base/load", {"artifact": "demo"}
        )
        assert (status, payload["error"]["code"]) == (409, "model-exists")
        status, payload = _request(
            server,
            "POST",
            "/v1/models/base/load",
            {"spec": {"artifact": "demo", "version": "v0001"}, "replace": True},
        )
        assert status == 200
        assert payload["model"]["serving"]["artifact"] == "demo@v0001"

    def test_load_rejects_bad_specs(self, server):
        cases = [
            ({"artifact": "demo", "nope": 1}, 400, "invalid-spec"),
            ({"name": "other", "artifact": "demo"}, 400, "invalid-spec"),
            ({"artifact": "ghost"}, 404, "artifact-not-found"),
            ({"fold_group": "ens", "strategy": "coin-flip"}, 400, "invalid-spec"),
        ]
        for body, expected_status, expected_code in cases:
            status, payload = _request(server, "POST", "/v1/models/fresh/load", body)
            assert (status, payload["error"]["code"]) == (
                expected_status,
                expected_code,
            ), body

    def test_alias_flip_over_http(self, server, raw_graphs):
        wire = program_graph_to_dict(raw_graphs[0])
        _request(server, "POST", "/v1/models/old/load", {"artifact": "demo", "version": "v0001"})
        status, payload = _request(
            server, "POST", "/v1/models/prod/alias", {"target": "base"}
        )
        assert status == 200 and payload == {"alias": "prod", "target": "base"}
        status, first = _request(
            server, "POST", "/v1/models/prod/predict", {"graph": wire}
        )
        assert status == 200
        _request(server, "POST", "/v1/models/prod/alias", {"target": "old"})
        status, second = _request(
            server, "POST", "/v1/models/prod/predict", {"graph": wire}
        )
        assert status == 200
        # v0001 and v0002 carry different weights: the flip changed answers.
        assert first["result"]["probabilities"] != second["result"]["probabilities"]
        # Unloading an alias target is refused with a structured 409...
        status, payload = _request(server, "POST", "/v1/models/old/unload")
        assert (status, payload["error"]["code"]) == (409, "hub-error")
        # ...and the remedy is available remotely too: a null target drops
        # the alias, after which the unload goes through.
        status, payload = _request(
            server, "POST", "/v1/models/prod/alias", {"target": None}
        )
        assert status == 200 and payload == {"alias": "prod", "target": None}
        status, payload = _request(server, "POST", "/v1/models/old/unload")
        assert status == 200 and payload == {"unloaded": "old"}
        # Dropping a non-existent alias is a structured 404.
        status, payload = _request(
            server, "POST", "/v1/models/prod/alias", {"target": None}
        )
        assert (status, payload["error"]["code"]) == (404, "model-not-found")

    def test_reload_over_http(self, registry_root, tmp_path, raw_graphs):
        registry = ArtifactRegistry(tmp_path)
        registry.save("m", small_predictor(seed=5))
        hub = ModelHub(str(tmp_path))
        hub.load(DeploymentSpec(name="m", artifact="m"))
        with PredictionHTTPServer(hub) as server:
            registry.save("m", small_predictor(seed=6))
            status, payload = _request(server, "POST", "/v1/models/m/reload")
            assert status == 200
            assert payload["model"]["serving"]["artifact"] == "m@v0002"


# ------------------------------------------------- concurrent hub mutation


class TestConcurrentHubMutation:
    def test_alias_flip_races_no_failed_requests(self, registry_root, raw_graphs):
        """The zero-downtime bar: flipping ``prod`` between two versions
        while clients hammer it must fail zero requests, and every answer
        must be exactly one version's answer — never a torn blend."""
        hub = ModelHub(registry_root, cache_capacity=512, pool_workers=2)
        hub.load(DeploymentSpec(name="v1", artifact="demo", version="v0001", max_wait_s=0.001))
        hub.load(DeploymentSpec(name="v2", artifact="demo", version="v0002", max_wait_s=0.001))
        hub.alias("prod", "v1")

        graphs = raw_graphs[:4]
        wire = [program_graph_to_dict(graph) for graph in graphs]
        legal = []
        for version in ("v0001", "v0002"):
            service = PredictionService.from_registry(registry_root, "demo", version=version)
            legal.append(result_payloads(service.predict_many(graphs)))

        def matches(answer, reference):
            # Probabilities are compared with a 1e-9 absolute tolerance:
            # micro-batch coalescing changes the BLAS batch shape, which
            # legitimately moves the last ULP (~1e-16).  The two versions'
            # answers differ at ~1e-1, and a torn blend would too, so the
            # tolerance separates noise from tearing by seven orders of
            # magnitude.
            return (
                answer["fingerprint"] == reference["fingerprint"]
                and answer["label"] == reference["label"]
                and answer["configuration"] == reference["configuration"]
                and np.allclose(
                    answer["probabilities"],
                    reference["probabilities"],
                    rtol=0.0,
                    atol=1e-9,
                )
            )

        clients = 6
        per_client = 25
        failures = []
        torn = []

        with PredictionHTTPServer(hub) as server:
            def worker(index):
                connection = http.client.HTTPConnection(
                    server.host, server.port, timeout=30
                )
                try:
                    for round_number in range(per_client):
                        graph_index = (index + round_number) % len(wire)
                        body = json.dumps({"graph": wire[graph_index]}).encode()
                        connection.request(
                            "POST", "/v1/models/prod/predict", body=body
                        )
                        response = connection.getresponse()
                        payload = json.loads(response.read())
                        if response.status != 200:
                            failures.append((response.status, payload))
                            continue
                        answer = strip(payload["result"])
                        if not (
                            matches(answer, legal[0][graph_index])
                            or matches(answer, legal[1][graph_index])
                        ):
                            torn.append(answer)
                finally:
                    connection.close()

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            flips = 0
            for _ in range(40):
                hub.alias("prod", "v2" if flips % 2 == 0 else "v1")
                flips += 1
                time.sleep(0.002)
            for thread in threads:
                thread.join()

        assert failures == []  # zero failed in-flight requests
        assert torn == []  # every answer is one version's exact answer

    def test_load_unload_races_never_500(self, registry_root, raw_graphs):
        """Unloading/reloading a model under fire: requests either succeed
        or get a structured 404 — never a 500, never a torn deployment."""
        hub = ModelHub(registry_root, cache_capacity=512)
        spec = DeploymentSpec(name="m", artifact="demo")
        hub.load(spec)
        app = ServingApp(hub)  # sync path: no batcher needed for the race
        wire = [program_graph_to_dict(graph) for graph in raw_graphs[:3]]
        body = json.dumps({"graphs": wire}).encode()
        expected = result_payloads(
            PredictionService.from_registry(registry_root, "demo").predict_many(
                raw_graphs[:3]
            )
        )

        stop = threading.Event()
        bad = []

        def worker():
            while not stop.is_set():
                status, payload, _ = app.handle("POST", "/v1/models/m/predict", body)
                if status == 200:
                    answers = [strip(r) for r in payload["results"]]
                    if answers != expected:
                        bad.append(("torn", answers))
                elif status == 404:
                    if payload["error"]["code"] != "model-not-found":
                        bad.append(("wrong-error", payload))
                else:
                    bad.append((status, payload))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(15):
                hub.unload("m")
                hub.load(spec)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        hub.stop()
        assert bad == []

    def test_replace_swap_is_atomic_in_process(self, registry_root, raw_graphs):
        """load(replace=True) under concurrent predicts: every answer comes
        from exactly one fully-built deployment."""
        hub = ModelHub(registry_root, cache_capacity=512)
        hub.load(DeploymentSpec(name="m", artifact="demo", version="v0001"))
        graphs = raw_graphs[:2]
        legal = []
        for version in ("v0001", "v0002"):
            service = PredictionService.from_registry(
                registry_root, "demo", version=version
            )
            legal.append(result_payloads(service.predict_many(graphs)))

        stop = threading.Event()
        bad = []

        def worker():
            while not stop.is_set():
                answers = result_payloads(hub.predict_many("m", graphs))
                if answers not in legal:
                    bad.append(answers)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for flip in range(10):
                version = "v0002" if flip % 2 == 0 else "v0001"
                hub.load(
                    DeploymentSpec(name="m", artifact="demo", version=version),
                    replace=True,
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        hub.stop()
        assert bad == []


# ----------------------------------------------------- registry resolution


class TestRegistryResolve:
    def test_resolve_latest_and_pinned(self, registry_root):
        registry = ArtifactRegistry(registry_root)
        latest = registry.resolve("demo")
        assert (latest.name, latest.version) == ("demo", "v0002")
        pinned = registry.resolve("demo", "v0001")
        assert pinned.version == "v0001"
        assert str(pinned) == "demo@v0001"

    def test_resolve_errors(self, registry_root):
        registry = ArtifactRegistry(registry_root)
        with pytest.raises(ArtifactNotFoundError):
            registry.resolve("ghost")
        with pytest.raises(ArtifactNotFoundError):
            registry.resolve("demo", "v9999")
        with pytest.raises(ArtifactNotFoundError):
            registry.resolve("demo", "not-a-version")
        with pytest.raises(ArtifactNotFoundError):
            registry.resolve("../demo")
