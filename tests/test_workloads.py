"""Tests for the benchmark-region suite (specs, IR generation, profiles)."""

import pytest

from repro.graphs import build_graph
from repro.ir import assert_valid, pointer_to, F64, I64
from repro.numasim import NumaPrefetchSimulator, default_configuration, skylake
from repro.workloads import (
    KernelSpec,
    Pattern,
    SIZE_1,
    SIZE_2,
    all_specs,
    build_suite,
    derive_profile,
    generate_region_module,
    profile_for_size,
    region_by_name,
    suite_summary,
)


class TestSpecs:
    def test_57_unique_regions(self):
        specs = all_specs()
        assert len(specs) == 57
        assert len({s.name for s in specs}) == 57

    def test_family_counts_match_paper_suites(self):
        specs = all_specs()
        families = {}
        for spec in specs:
            families[spec.family] = families.get(spec.family, 0) + 1
        assert families["clomp"] == 11
        assert families["lulesh"] == 8
        assert families["nas"] >= 18
        assert families["rodinia"] >= 18

    def test_expected_paper_regions_present(self):
        names = {s.name for s in all_specs()}
        for expected in ("mg residual", "kmeans", "is rank", "lulesh 2104", "clomp 1056", "b+tree 86"):
            assert expected in names

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(name="bad", family="nas", pattern="teleport")
        with pytest.raises(ValueError):
            KernelSpec(name="bad", family="nas", num_arrays=0)


class TestIRGeneration:
    @pytest.mark.parametrize("pattern", [
        Pattern.STREAMING,
        Pattern.STENCIL,
        Pattern.REDUCTION,
        Pattern.GATHER,
        Pattern.SCATTER,
        Pattern.POINTER_CHASE,
        Pattern.BRANCHY,
        Pattern.INNER_LOOP,
        Pattern.COMPUTE,
    ])
    def test_every_pattern_generates_valid_ir(self, pattern):
        spec = KernelSpec(
            name=f"probe {pattern}",
            family="nas",
            pattern=pattern,
            uses_atomics=pattern in (Pattern.SCATTER, Pattern.REDUCTION),
            inner_trip=4,
        )
        module = generate_region_module(spec)
        assert_valid(module)
        region = module.get_function(spec.region_function_name)
        assert region is not None
        assert region.is_omp_outlined
        graph = build_graph(module)
        assert graph.validate() == []

    def test_suite_modules_are_valid(self, region_suite):
        for region in region_suite:
            assert_valid(region.module)
            assert region.module.get_function(region.function_name) is not None

    def test_atomics_visible_in_ir(self, region_suite):
        is_rank = region_by_name(region_suite, "is rank")
        opcodes = {i.opcode for i in is_rank.module.get_function(is_rank.function_name).instructions()}
        assert "atomicrmw" in opcodes

    def test_openmp_runtime_calls_present(self, region_suite):
        region = region_suite[0]
        callees = {
            i.callee_name
            for i in region.module.get_function(region.function_name).instructions()
            if i.opcode == "call"
        }
        assert "omp_get_thread_num" in callees
        assert "omp_get_num_threads" in callees

    def test_suite_summary(self, region_suite):
        summary = suite_summary(region_suite)
        assert summary["regions"] == 57
        assert summary["families"] == 4
        assert summary["instructions_mean"] > 10


class TestProfiles:
    def test_profile_matches_pattern(self):
        gather = derive_profile(KernelSpec(name="g", family="nas", pattern=Pattern.GATHER))
        stream = derive_profile(KernelSpec(name="s", family="nas", pattern=Pattern.STREAMING))
        assert gather.irregular_fraction > stream.irregular_fraction
        assert stream.sequential_fraction > gather.sequential_fraction

    def test_atomics_reflected(self):
        spec = KernelSpec(name="sc", family="nas", pattern=Pattern.SCATTER, uses_atomics=True)
        assert derive_profile(spec).atomics_per_iter == 1.0

    def test_sqrt_increases_flops(self):
        base = KernelSpec(name="a", family="nas", pattern=Pattern.STREAMING, flop_chain=2)
        with_sqrt = KernelSpec(name="b", family="nas", pattern=Pattern.STREAMING, flop_chain=2, uses_sqrt=True)
        assert derive_profile(with_sqrt).flops_per_iter > derive_profile(base).flops_per_iter

    def test_overrides_applied(self):
        spec = KernelSpec(
            name="o", family="nas", pattern=Pattern.STREAMING,
            profile_overrides={"shared_fraction": 0.77},
        )
        assert derive_profile(spec).shared_fraction == 0.77

    def test_input_scaling(self, region_suite):
        region = region_by_name(region_suite, "mg residual")
        size1 = region.profile_at(SIZE_1)
        size2 = region.profile_at(SIZE_2)
        assert size2.footprint_mb > size1.footprint_mb
        assert size2.iterations > size1.iterations
        with pytest.raises(KeyError):
            profile_for_size(region.profile, region.family, "size-99")

    def test_profiles_simulate(self, region_suite):
        machine = skylake()
        simulator = NumaPrefetchSimulator(machine)
        config = default_configuration(machine)
        for region in region_suite[::7]:
            result = simulator.simulate(region.profile, config)
            assert result.time_seconds > 0


class TestSuiteFilters:
    def test_family_filter(self):
        clomp_only = build_suite(families=["clomp"])
        assert len(clomp_only) == 11
        assert all(r.family == "clomp" for r in clomp_only)

    def test_limit(self):
        limited = build_suite(limit=5)
        assert len(limited) == 5

    def test_region_by_name_missing(self, region_suite):
        with pytest.raises(KeyError):
            region_by_name(region_suite, "nonexistent kernel")
